"""Cell graphs: vertices are cells, edges are reachability (Def 5.8).

A cell graph ``G = (V, E)`` has three vertex classes — core, non-core,
and *undetermined* (cells referenced from another partition whose core
status is unknown locally) — and three edge classes:

* **full** (``C1 => C2``): both cells core; all points of both belong to
  one cluster; direction is irrelevant (Lemma 3.5, "Fully").
* **partial** (``C1 ~> C2``): ``C2`` is not core; only the points of
  ``C2`` within ``eps`` of a core point of ``C1`` join the cluster.
* **undetermined** (``C1 ?> C2``): ``C2`` lives in another partition, so
  its core status — and hence the edge type — is resolved during merging.

The *global* cell graph (Def 6.1) is a cell graph with no undetermined
vertices or edges.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import IntEnum

import numpy as np

from repro.core.cells import CellId
from repro.graph.union_find import ArrayUnionFind, UnionFind

__all__ = [
    "EdgeType",
    "CellGraph",
    "FlatCellGraph",
    "V_ABSENT",
    "V_UNDETERMINED",
    "V_NONCORE",
    "V_CORE",
]

#: Vertex-status codes of :class:`FlatCellGraph`, ordered by knowledge
#: priority: merging two graphs' views of a vertex is an elementwise
#: maximum (a determined class always beats undetermined, core beats
#: non-core — the same promotion rules as :meth:`CellGraph.absorb`).
V_ABSENT = 0
V_UNDETERMINED = 1
V_NONCORE = 2
V_CORE = 3

_STATUS_NAMES = ("absent", "undetermined", "noncore", "core")


class EdgeType(IntEnum):
    """Directly-reachable relationship class between two cells."""

    FULL = 0
    PARTIAL = 1
    UNDETERMINED = 2


@dataclass
class CellGraph:
    """Mutable cell (sub)graph for one partition or a merger of several.

    Edges are keyed by the ordered pair ``(src, dst)``; ``src`` is always
    a core cell because only core cells initiate reachability.
    """

    core: set[CellId] = field(default_factory=set)
    noncore: set[CellId] = field(default_factory=set)
    undetermined: set[CellId] = field(default_factory=set)
    edges: dict[tuple[CellId, CellId], EdgeType] = field(default_factory=dict)
    # Keys of edges whose type is still UNDETERMINED; kept in sync so
    # type detection after a merge only visits unresolved edges.
    _undetermined_edges: set[tuple[CellId, CellId]] = field(default_factory=set)
    # Index of undetermined edges by destination cell: an edge can only
    # resolve when its destination becomes determined, so type detection
    # scans distinct destinations instead of every undetermined edge.
    _undetermined_by_dst: dict[CellId, set[tuple[CellId, CellId]]] = field(
        default_factory=dict, repr=False
    )
    # Incremental spanning forest over full edges (Sec 6.1.4): the keys
    # in _pending_full are full edges not yet tested against the forest.
    _full_forest: UnionFind = field(default_factory=UnionFind, repr=False)
    _pending_full: list[tuple[CellId, CellId]] = field(default_factory=list, repr=False)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def num_edges(self) -> int:
        """Total number of edges of all types."""
        return len(self.edges)

    @property
    def num_vertices(self) -> int:
        """Total number of vertices of all classes."""
        return len(self.core) + len(self.noncore) + len(self.undetermined)

    def is_global(self) -> bool:
        """Definition 6.1: no undetermined vertices or edges remain."""
        if self.undetermined:
            return False
        return all(t is not EdgeType.UNDETERMINED for t in self.edges.values())

    def edges_of_type(self, edge_type: EdgeType) -> list[tuple[CellId, CellId]]:
        """All edges of one type, sorted for determinism."""
        return sorted(key for key, t in self.edges.items() if t is edge_type)

    def vertex_status(self, cell: CellId) -> str:
        """``"core"``, ``"noncore"``, ``"undetermined"``, or ``"absent"``."""
        if cell in self.core:
            return "core"
        if cell in self.noncore:
            return "noncore"
        if cell in self.undetermined:
            return "undetermined"
        return "absent"

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def add_core_cell(self, cell: CellId) -> None:
        """Register ``cell`` as core (promoting from any other class)."""
        self.noncore.discard(cell)
        self.undetermined.discard(cell)
        self.core.add(cell)

    def add_noncore_cell(self, cell: CellId) -> None:
        """Register ``cell`` as determined non-core."""
        if cell in self.core:
            raise ValueError(f"cell {cell} is already core")
        self.undetermined.discard(cell)
        self.noncore.add(cell)

    def add_undetermined_cell(self, cell: CellId) -> None:
        """Register ``cell`` as undetermined unless already determined."""
        if cell not in self.core and cell not in self.noncore:
            self.undetermined.add(cell)

    def add_edge(self, src: CellId, dst: CellId, edge_type: EdgeType) -> None:
        """Add (or upgrade) a directed edge ``src -> dst``.

        An existing undetermined edge is overwritten by a determined
        type; a determined type is never downgraded.
        """
        key = (src, dst)
        current = self.edges.get(key)
        if current is None or current is EdgeType.UNDETERMINED:
            self.edges[key] = edge_type
            if edge_type is EdgeType.UNDETERMINED:
                self._undetermined_edges.add(key)
                self._undetermined_by_dst.setdefault(dst, set()).add(key)
            else:
                if current is EdgeType.UNDETERMINED:
                    self._undetermined_edges.discard(key)
                    self._unindex(key)
                if edge_type is EdgeType.FULL:
                    self._pending_full.append(key)

    def _unindex(self, key: tuple[CellId, CellId]) -> None:
        bucket = self._undetermined_by_dst.get(key[1])
        if bucket is not None:
            bucket.discard(key)
            if not bucket:
                del self._undetermined_by_dst[key[1]]

    # ------------------------------------------------------------------
    # Merging machinery (Sections 6.1.2 - 6.1.4)
    # ------------------------------------------------------------------

    def copy(self) -> "CellGraph":
        """Shallow-structure copy (cell ids are immutable tuples)."""
        clone = CellGraph()
        clone.core = set(self.core)
        clone.noncore = set(self.noncore)
        clone.undetermined = set(self.undetermined)
        clone.edges = dict(self.edges)
        clone._undetermined_edges = set(self._undetermined_edges)
        clone._undetermined_by_dst = {
            dst: set(keys) for dst, keys in self._undetermined_by_dst.items()
        }
        clone._full_forest = self._full_forest.copy()
        clone._pending_full = list(self._pending_full)
        return clone

    def absorb(self, other: "CellGraph") -> "CellGraph":
        """In-place merger ``self |= other`` (Definition 6.2).

        Same semantics as :meth:`merge` without copying ``self`` — the
        tournament's hot path.  ``other`` is not modified.
        """
        self.core |= other.core
        self.noncore |= other.noncore
        self.noncore -= self.core
        self.undetermined |= other.undetermined
        self.undetermined -= self.core
        self.undetermined -= self.noncore
        edges = self.edges
        undetermined_edges = self._undetermined_edges
        by_dst = self._undetermined_by_dst
        for key, edge_type in other.edges.items():
            current = edges.get(key)
            if current is None or current is EdgeType.UNDETERMINED:
                edges[key] = edge_type
                if edge_type is EdgeType.UNDETERMINED:
                    if key not in undetermined_edges:
                        undetermined_edges.add(key)
                        by_dst.setdefault(key[1], set()).add(key)
                elif current is EdgeType.UNDETERMINED:
                    undetermined_edges.discard(key)
                    self._unindex(key)
        self._full_forest.merge_from(other._full_forest)
        self._pending_full.extend(other._pending_full)
        return self

    def absorb_resolving(self, other: "CellGraph") -> int:
        """Fused merger + edge-type detection (Secs 6.1.2-6.1.3).

        Equivalent to ``self.absorb(other)`` followed by
        :meth:`detect_edge_types`, but only touches the edges that can
        actually resolve in this match: an undetermined edge resolves
        exactly when the *other* side determines its destination, so the
        work per tournament match is proportional to what changed, not
        to the graph size.  Returns the number of edges resolved.
        """
        resolved = 0
        other_determined = other.core | other.noncore
        self.core |= other.core
        self.noncore |= other.noncore
        self.noncore -= self.core
        self.undetermined |= other.undetermined
        self.undetermined -= self.core
        self.undetermined -= self.noncore
        core = self.core
        noncore = self.noncore
        edges = self.edges
        undetermined_edges = self._undetermined_edges
        by_dst = self._undetermined_by_dst
        pending = self._pending_full
        # My old undetermined edges against the other side's verdicts.
        for dst in other_determined & by_dst.keys():
            edge_type = EdgeType.FULL if dst in core else EdgeType.PARTIAL
            keys = by_dst.pop(dst)
            for key in keys:
                edges[key] = edge_type
                if edge_type is EdgeType.FULL:
                    pending.append(key)
            undetermined_edges.difference_update(keys)
            resolved += len(keys)
        # The other side's edges, classifying undetermined ones on entry.
        for key, edge_type in other.edges.items():
            current = edges.get(key)
            if current is not None and current is not EdgeType.UNDETERMINED:
                continue
            newly_full = False
            if edge_type is EdgeType.UNDETERMINED:
                dst = key[1]
                if dst in core:
                    edge_type = EdgeType.FULL
                    newly_full = True
                    resolved += 1
                elif dst in noncore:
                    edge_type = EdgeType.PARTIAL
                    resolved += 1
            edges[key] = edge_type
            if edge_type is EdgeType.UNDETERMINED:
                if key not in undetermined_edges:
                    undetermined_edges.add(key)
                    by_dst.setdefault(key[1], set()).add(key)
            else:
                if current is EdgeType.UNDETERMINED:
                    undetermined_edges.discard(key)
                    self._unindex(key)
                # Only edges *resolved in this match* are queued for the
                # forest test.  An incoming already-full edge is either a
                # tree edge of the other branch (its connectivity arrives
                # via merge_from — re-testing it against that very
                # connectivity would delete it) or still in the other
                # side's own pending list, extended below.
                if newly_full:
                    pending.append(key)
        self._full_forest.merge_from(other._full_forest)
        self._pending_full.extend(other._pending_full)
        return resolved

    @classmethod
    def merge(cls, a: "CellGraph", b: "CellGraph") -> "CellGraph":
        """Single merger ``a | b`` (Definition 6.2).

        Vertex classes are united with undetermined cells promoted to
        whatever the other graph determined.  Edge sets are united; the
        paper notes ``E1 & E2 = {}`` because partitions are disjoint, but
        a duplicate key with a determined type wins over undetermined.
        """
        return a.copy().absorb(b)

    def detect_edge_types(self) -> int:
        """Resolve undetermined edges against the current vertex classes
        (Section 6.1.3).  Returns the number of edges resolved.

        Scans the *distinct destinations* of undetermined edges — an
        edge's type is a function of its destination's class — so a
        tournament match costs O(unresolved destinations) instead of
        O(unresolved edges).
        """
        resolved = 0
        core = self.core
        noncore = self.noncore
        for dst in list(self._undetermined_by_dst):
            if dst in core:
                edge_type = EdgeType.FULL
            elif dst in noncore:
                edge_type = EdgeType.PARTIAL
            else:
                continue
            keys = self._undetermined_by_dst.pop(dst)
            for key in keys:
                self.edges[key] = edge_type
                if edge_type is EdgeType.FULL:
                    self._pending_full.append(key)
            self._undetermined_edges.difference_update(keys)
            resolved += len(keys)
        return resolved

    def reduce_full_edges(self) -> int:
        """Drop redundant full edges via a spanning forest (Sec 6.1.4).

        Full edges are treated as undirected; any full edge that closes a
        cycle among core cells is removed.  Returns the number removed.
        Connectivity (and therefore the final clustering) is unchanged.
        """
        removed = 0
        forest = self._full_forest
        for key in self._pending_full:
            if self.edges.get(key) is not EdgeType.FULL:
                continue  # stale pending entry
            if not forest.union(key[0], key[1]):
                del self.edges[key]
                removed += 1
        self._pending_full.clear()
        return removed

    def reduce_all_full_edges(self) -> int:
        """Full-scan edge reduction: rebuild the forest over every full
        edge currently present and drop the redundant ones.

        Used once after a tournament: cross-branch duplicate full edges
        (the reversed pair resolved in two different branches) are not
        *pending* in either branch, so the incremental pass cannot see
        them; one linear sweep at the end removes them.
        """
        self._full_forest = UnionFind()
        self._pending_full = [
            key for key, t in self.edges.items() if t is EdgeType.FULL
        ]
        return self.reduce_full_edges()

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------

    def validate(self) -> None:
        """Check structural invariants; raises :class:`ValueError` on
        violation.  Intended for tests and debugging."""
        if self.core & self.noncore:
            raise ValueError("a cell is both core and non-core")
        if (self.core | self.noncore) & self.undetermined:
            raise ValueError("a determined cell is also undetermined")
        known = self.core | self.noncore | self.undetermined
        for (src, dst), edge_type in self.edges.items():
            if src not in known or dst not in known:
                raise ValueError(f"edge ({src}, {dst}) references unknown vertex")
            if src in self.noncore:
                raise ValueError(f"edge source {src} is a non-core cell")
            if edge_type is EdgeType.FULL and (
                src not in self.core or dst not in self.core
            ):
                raise ValueError(f"full edge ({src}, {dst}) endpoint not core")
            if edge_type is EdgeType.PARTIAL and dst not in self.noncore:
                raise ValueError(f"partial edge ({src}, {dst}) target not non-core")


class FlatCellGraph:
    """Columnar cell graph over the dense flat-row vertex universe.

    The struct-of-arrays counterpart of :class:`CellGraph` for the merge
    plane: vertices are the dense cell indices of a
    ``FlatCellDictionary`` (flat row == dense dict index, the PR 4
    invariant), vertex classes live in one ``int8`` status array keyed by
    those indices, and edges are a parallel ``(src:int32, dst:int32,
    type:int8)`` edge list.  Merging is an elementwise status maximum
    plus an array concatenation; edge-type detection is a vectorized
    gather of destination statuses; the Sec 6.1.4 spanning-forest
    reduction runs over an :class:`~repro.graph.union_find.ArrayUnionFind`.

    ``CellGraph`` remains the reference implementation: for equal inputs
    both layouts produce identical vertex classes, edge multisets,
    resolved/removed counts, and (via canonical component numbering)
    identical final labels.  The one intentional difference: flat
    ``absorb_resolving`` always equals ``absorb`` + ``detect_edge_types``
    (it re-resolves *all* undetermined edges against the merged
    statuses), which coincides with the dict behaviour on pipeline
    subgraphs where a match can never leave a stale resolvable edge.
    """

    __slots__ = ("status", "src", "dst", "etype", "_pending", "_forest")

    def __init__(self, n_slots: int = 0) -> None:
        self.status = np.zeros(int(n_slots), dtype=np.int8)
        self.src = np.empty(0, dtype=np.int32)
        self.dst = np.empty(0, dtype=np.int32)
        self.etype = np.empty(0, dtype=np.int8)
        # Indices (into src/dst/etype) of FULL edges not yet tested
        # against the spanning forest.
        self._pending: list[int] = []
        self._forest = ArrayUnionFind(int(n_slots))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def n_slots(self) -> int:
        """Size of the vertex universe (dictionary cell count)."""
        return int(self.status.size)

    @property
    def num_edges(self) -> int:
        """Total number of edges of all types."""
        return int(self.src.size)

    @property
    def num_vertices(self) -> int:
        """Number of present (non-absent) vertices."""
        return int(np.count_nonzero(self.status))

    @property
    def core(self) -> set[int]:
        """Core vertex indices (materialized as a set for duck parity)."""
        return set(np.nonzero(self.status == V_CORE)[0].tolist())

    @property
    def noncore(self) -> set[int]:
        """Determined non-core vertex indices."""
        return set(np.nonzero(self.status == V_NONCORE)[0].tolist())

    @property
    def undetermined(self) -> set[int]:
        """Undetermined vertex indices."""
        return set(np.nonzero(self.status == V_UNDETERMINED)[0].tolist())

    def is_global(self) -> bool:
        """Definition 6.1: no undetermined vertices or edges remain."""
        if (self.status == V_UNDETERMINED).any():
            return False
        return not (self.etype == int(EdgeType.UNDETERMINED)).any()

    def edges_of_type(self, edge_type: EdgeType) -> list[tuple[int, int]]:
        """All edges of one type, sorted for determinism."""
        idx = np.nonzero(self.etype == int(edge_type))[0]
        if idx.size == 0:
            return []
        src = self.src[idx]
        dst = self.dst[idx]
        order = np.lexsort((dst, src))
        return list(zip(src[order].tolist(), dst[order].tolist()))

    def vertex_status(self, cell: int) -> str:
        """``"core"``, ``"noncore"``, ``"undetermined"``, or ``"absent"``."""
        return _STATUS_NAMES[int(self.status[cell])]

    def _edge_keys(self) -> np.ndarray:
        """Edges as scalar int64 keys ``src * n_slots + dst``."""
        n = max(self.n_slots, 1)
        return self.src.astype(np.int64) * n + self.dst.astype(np.int64)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def add_core_cell(self, cell: int) -> None:
        """Register ``cell`` as core (promoting from any other class)."""
        self.status[cell] = V_CORE

    def add_noncore_cell(self, cell: int) -> None:
        """Register ``cell`` as determined non-core."""
        if self.status[cell] == V_CORE:
            raise ValueError(f"cell {cell} is already core")
        self.status[cell] = V_NONCORE

    def add_undetermined_cell(self, cell: int) -> None:
        """Register ``cell`` as undetermined unless already determined."""
        if self.status[cell] == V_ABSENT:
            self.status[cell] = V_UNDETERMINED

    def add_edge(self, src: int, dst: int, edge_type: EdgeType) -> None:
        """Add (or upgrade) a directed edge ``src -> dst``.

        Same contract as :meth:`CellGraph.add_edge`.  O(E) per call —
        meant for tests and small graphs; the pipeline builds edge
        arrays in bulk (:meth:`from_arrays`).
        """
        hit = np.nonzero((self.src == src) & (self.dst == dst))[0]
        if hit.size:
            pos = int(hit[0])
            if self.etype[pos] == int(EdgeType.UNDETERMINED):
                self.etype[pos] = int(edge_type)
                if edge_type is EdgeType.FULL:
                    self._pending.append(pos)
            return
        self.src = np.append(self.src, np.int32(src))
        self.dst = np.append(self.dst, np.int32(dst))
        self.etype = np.append(self.etype, np.int8(int(edge_type)))
        if edge_type is EdgeType.FULL:
            self._pending.append(self.src.size - 1)

    @classmethod
    def from_arrays(
        cls,
        status: np.ndarray,
        src: np.ndarray,
        dst: np.ndarray,
        etype: np.ndarray,
        *,
        pending: "list[int] | None" = None,
        forest: "ArrayUnionFind | None" = None,
    ) -> "FlatCellGraph":
        """Bulk constructor from prebuilt columns (arrays are adopted).

        ``pending`` defaults to every FULL edge (nothing forest-tested
        yet); ``forest`` defaults to a fresh one over the universe.
        """
        graph = cls.__new__(cls)
        graph.status = np.ascontiguousarray(status, dtype=np.int8)
        graph.src = np.ascontiguousarray(src, dtype=np.int32)
        graph.dst = np.ascontiguousarray(dst, dtype=np.int32)
        graph.etype = np.ascontiguousarray(etype, dtype=np.int8)
        if pending is None:
            pending = np.nonzero(graph.etype == int(EdgeType.FULL))[0].tolist()
        graph._pending = list(pending)
        graph._forest = (
            forest if forest is not None else ArrayUnionFind(graph.status.size)
        )
        return graph

    # ------------------------------------------------------------------
    # Merging machinery (Sections 6.1.2 - 6.1.4)
    # ------------------------------------------------------------------

    def copy(self) -> "FlatCellGraph":
        """Independent copy (arrays duplicated)."""
        clone = FlatCellGraph.__new__(FlatCellGraph)
        clone.status = self.status.copy()
        clone.src = self.src.copy()
        clone.dst = self.dst.copy()
        clone.etype = self.etype.copy()
        clone._pending = list(self._pending)
        clone._forest = self._forest.copy()
        return clone

    def _load_from(self, other: "FlatCellGraph") -> None:
        self.status = other.status
        self.src = other.src
        self.dst = other.dst
        self.etype = other.etype
        self._pending = other._pending
        self._forest = other._forest

    def _concatenate(self, other: "FlatCellGraph") -> None:
        """Vectorized union assuming disjoint edge keys (the pipeline
        case: each edge's source cell is owned by one partition)."""
        np.maximum(self.status, other.status, out=self.status)
        base = self.src.size
        self.src = np.concatenate([self.src, other.src])
        self.dst = np.concatenate([self.dst, other.dst])
        self.etype = np.concatenate([self.etype, other.etype])
        self._pending.extend(p + base for p in other._pending)
        self._forest.merge_from(other._forest)

    def _has_overlap(self, other: "FlatCellGraph") -> bool:
        if not (self.src.size and other.src.size):
            return False
        return bool(
            np.intersect1d(self._edge_keys(), other._edge_keys()).size
        )

    def absorb(self, other: "FlatCellGraph") -> "FlatCellGraph":
        """In-place merger ``self |= other`` (Definition 6.2)."""
        if other.n_slots != self.n_slots:
            raise ValueError(
                f"universe mismatch: {self.n_slots} vs {other.n_slots}"
            )
        if self._has_overlap(other):
            # Rare path (hand-built graphs only): duplicate edge keys
            # would destabilize pending indices under dedup, so route
            # through the dict reference for its exact determined-wins
            # semantics.  Pipeline subgraphs have disjoint edge keys.
            ref = self.to_cell_graph()
            ref.absorb(other.to_cell_graph())
            self._load_from(FlatCellGraph.from_cell_graph(ref, self.n_slots))
            return self
        self._concatenate(other)
        return self

    def absorb_resolving(self, other: "FlatCellGraph") -> int:
        """Fused merger + edge-type detection (Secs 6.1.2-6.1.3).

        Exactly ``self.absorb(other)`` followed by
        :meth:`detect_edge_types`; returns the number of edges resolved.
        """
        self.absorb(other)
        return self.detect_edge_types()

    @classmethod
    def merge(
        cls, a: "FlatCellGraph", b: "FlatCellGraph"
    ) -> "FlatCellGraph":
        """Single merger ``a | b`` (Definition 6.2)."""
        return a.copy().absorb(b)

    def detect_edge_types(self) -> int:
        """Resolve undetermined edges against the current vertex classes
        (Section 6.1.3).  Returns the number of edges resolved.

        One vectorized gather of destination statuses over the
        undetermined-typed edges — newly FULL edges join the pending
        list for the next forest test.
        """
        idx = np.nonzero(self.etype == int(EdgeType.UNDETERMINED))[0]
        if idx.size == 0:
            return 0
        dst_status = self.status[self.dst[idx]]
        to_full = idx[dst_status == V_CORE]
        to_partial = idx[dst_status == V_NONCORE]
        self.etype[to_full] = int(EdgeType.FULL)
        self.etype[to_partial] = int(EdgeType.PARTIAL)
        self._pending.extend(to_full.tolist())
        return int(to_full.size + to_partial.size)

    def reduce_full_edges(self) -> int:
        """Drop redundant full edges via the spanning forest (Sec 6.1.4).

        Returns the number removed; connectivity is unchanged.
        """
        if not self._pending:
            return 0
        pending, self._pending = self._pending, []
        full = int(EdgeType.FULL)
        types = self.etype[pending].tolist()
        srcs = self.src[pending].tolist()
        dsts = self.dst[pending].tolist()
        union = self._forest.union
        drop: list[int] = []
        for j, edge_index in enumerate(pending):
            if types[j] != full:
                continue  # stale pending entry
            if not union(srcs[j], dsts[j]):
                drop.append(edge_index)
        if drop:
            keep = np.ones(self.src.size, dtype=bool)
            keep[drop] = False
            self.src = self.src[keep]
            self.dst = self.dst[keep]
            self.etype = self.etype[keep]
        return len(drop)

    def reduce_all_full_edges(self) -> int:
        """Full-scan edge reduction (see
        :meth:`CellGraph.reduce_all_full_edges`)."""
        self._forest = ArrayUnionFind(self.n_slots)
        self._pending = np.nonzero(self.etype == int(EdgeType.FULL))[0].tolist()
        return self.reduce_full_edges()

    def remap_vertices(
        self, rowmap: np.ndarray, n_slots: int
    ) -> "FlatCellGraph":
        """A copy of this graph living in a larger vertex universe.

        ``rowmap`` maps every old slot to its new dense index (all
        entries must be valid rows of the new universe and injective);
        statuses, edges, pending positions, and the spanning forest are
        carried over under the renaming.  Used by the incremental-ingest
        splice: when new cells appear, the dictionary's lex order shifts
        every row at or after an insertion point, and the retained graph
        must follow.
        """
        rowmap = np.asarray(rowmap, dtype=np.int64)
        if rowmap.shape != (self.n_slots,):
            raise ValueError("rowmap must cover every old slot")
        if rowmap.size and (rowmap.min() < 0 or rowmap.max() >= n_slots):
            raise ValueError("rowmap points outside the new universe")
        status = np.zeros(int(n_slots), dtype=np.int8)
        status[rowmap] = self.status
        src = rowmap[self.src].astype(np.int32)
        dst = rowmap[self.dst].astype(np.int32)
        # Rename the forest: a new-universe slot backed by an old slot
        # keeps its (renamed) parent; fresh slots are their own roots.
        parent = np.arange(int(n_slots), dtype=np.int64)
        parent[rowmap] = rowmap[self._forest.to_array()]
        return FlatCellGraph.from_arrays(
            status,
            src,
            dst,
            self.etype.copy(),
            pending=list(self._pending),
            forest=ArrayUnionFind.from_array(parent),
        )

    # ------------------------------------------------------------------
    # Layout conversion
    # ------------------------------------------------------------------

    @classmethod
    def from_cell_graph(
        cls, graph: CellGraph, n_slots: int
    ) -> "FlatCellGraph":
        """Convert a dict :class:`CellGraph` whose cell ids are dense
        integer indices into ``0 .. n_slots - 1``."""
        flat = cls(n_slots)
        status = flat.status
        for cell in graph.undetermined:
            status[cell] = V_UNDETERMINED
        for cell in graph.noncore:
            status[cell] = V_NONCORE
        for cell in graph.core:
            status[cell] = V_CORE
        if graph.edges:
            keys = list(graph.edges)
            count = len(keys)
            flat.src = np.fromiter(
                (k[0] for k in keys), dtype=np.int32, count=count
            )
            flat.dst = np.fromiter(
                (k[1] for k in keys), dtype=np.int32, count=count
            )
            flat.etype = np.fromiter(
                (int(t) for t in graph.edges.values()),
                dtype=np.int8,
                count=count,
            )
            index_of = {key: i for i, key in enumerate(keys)}
            flat._pending = [
                index_of[key]
                for key in graph._pending_full
                if key in index_of
            ]
        dict_forest = graph._full_forest
        for item in list(dict_forest._parent):
            root = dict_forest.find(item)
            if root != item:
                flat._forest.union(item, root)
        return flat

    def to_cell_graph(self) -> CellGraph:
        """Convert to the dict reference layout (int cell ids).

        The union-find trees are rebuilt from connectivity, so the
        round-trip preserves behaviour (which edges future reductions
        remove) rather than the internal tree shape.
        """
        graph = CellGraph()
        graph.core = self.core
        graph.noncore = self.noncore
        graph.undetermined = self.undetermined
        src = self.src.tolist()
        dst = self.dst.tolist()
        types = self.etype.tolist()
        for i in range(len(src)):
            key = (src[i], dst[i])
            edge_type = EdgeType(types[i])
            graph.edges[key] = edge_type
            if edge_type is EdgeType.UNDETERMINED:
                graph._undetermined_edges.add(key)
                graph._undetermined_by_dst.setdefault(key[1], set()).add(key)
        graph._pending_full = [(src[e], dst[e]) for e in self._pending]
        parent = self._forest._parent
        for item in range(len(parent)):
            if parent[item] != item:
                graph._full_forest.union(item, self._forest.find(item))
        return graph

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------

    def validate(self) -> None:
        """Check structural invariants; raises :class:`ValueError` on
        violation.  Intended for tests and debugging."""
        if self.src.size != self.dst.size or self.src.size != self.etype.size:
            raise ValueError("edge columns have mismatched lengths")
        if self.src.size == 0:
            return
        if (self.src < 0).any() or (self.src >= self.n_slots).any():
            raise ValueError("edge source outside the vertex universe")
        if (self.dst < 0).any() or (self.dst >= self.n_slots).any():
            raise ValueError("edge target outside the vertex universe")
        src_status = self.status[self.src]
        dst_status = self.status[self.dst]
        if (src_status == V_ABSENT).any() or (dst_status == V_ABSENT).any():
            raise ValueError("edge references an absent vertex")
        if (src_status == V_NONCORE).any():
            raise ValueError("edge source is a non-core cell")
        full = self.etype == int(EdgeType.FULL)
        if (src_status[full] != V_CORE).any() or (
            dst_status[full] != V_CORE
        ).any():
            raise ValueError("full edge endpoint not core")
        partial = self.etype == int(EdgeType.PARTIAL)
        if (dst_status[partial] != V_NONCORE).any():
            raise ValueError("partial edge target not non-core")
        keys = self._edge_keys()
        if np.unique(keys).size != keys.size:
            raise ValueError("duplicate edge key in flat graph")
