"""Cell graphs: vertices are cells, edges are reachability (Def 5.8).

A cell graph ``G = (V, E)`` has three vertex classes — core, non-core,
and *undetermined* (cells referenced from another partition whose core
status is unknown locally) — and three edge classes:

* **full** (``C1 => C2``): both cells core; all points of both belong to
  one cluster; direction is irrelevant (Lemma 3.5, "Fully").
* **partial** (``C1 ~> C2``): ``C2`` is not core; only the points of
  ``C2`` within ``eps`` of a core point of ``C1`` join the cluster.
* **undetermined** (``C1 ?> C2``): ``C2`` lives in another partition, so
  its core status — and hence the edge type — is resolved during merging.

The *global* cell graph (Def 6.1) is a cell graph with no undetermined
vertices or edges.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import IntEnum

from repro.core.cells import CellId
from repro.graph.union_find import UnionFind

__all__ = ["EdgeType", "CellGraph"]


class EdgeType(IntEnum):
    """Directly-reachable relationship class between two cells."""

    FULL = 0
    PARTIAL = 1
    UNDETERMINED = 2


@dataclass
class CellGraph:
    """Mutable cell (sub)graph for one partition or a merger of several.

    Edges are keyed by the ordered pair ``(src, dst)``; ``src`` is always
    a core cell because only core cells initiate reachability.
    """

    core: set[CellId] = field(default_factory=set)
    noncore: set[CellId] = field(default_factory=set)
    undetermined: set[CellId] = field(default_factory=set)
    edges: dict[tuple[CellId, CellId], EdgeType] = field(default_factory=dict)
    # Keys of edges whose type is still UNDETERMINED; kept in sync so
    # type detection after a merge only visits unresolved edges.
    _undetermined_edges: set[tuple[CellId, CellId]] = field(default_factory=set)
    # Index of undetermined edges by destination cell: an edge can only
    # resolve when its destination becomes determined, so type detection
    # scans distinct destinations instead of every undetermined edge.
    _undetermined_by_dst: dict[CellId, set[tuple[CellId, CellId]]] = field(
        default_factory=dict, repr=False
    )
    # Incremental spanning forest over full edges (Sec 6.1.4): the keys
    # in _pending_full are full edges not yet tested against the forest.
    _full_forest: UnionFind = field(default_factory=UnionFind, repr=False)
    _pending_full: list[tuple[CellId, CellId]] = field(default_factory=list, repr=False)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def num_edges(self) -> int:
        """Total number of edges of all types."""
        return len(self.edges)

    @property
    def num_vertices(self) -> int:
        """Total number of vertices of all classes."""
        return len(self.core) + len(self.noncore) + len(self.undetermined)

    def is_global(self) -> bool:
        """Definition 6.1: no undetermined vertices or edges remain."""
        if self.undetermined:
            return False
        return all(t is not EdgeType.UNDETERMINED for t in self.edges.values())

    def edges_of_type(self, edge_type: EdgeType) -> list[tuple[CellId, CellId]]:
        """All edges of one type, sorted for determinism."""
        return sorted(key for key, t in self.edges.items() if t is edge_type)

    def vertex_status(self, cell: CellId) -> str:
        """``"core"``, ``"noncore"``, ``"undetermined"``, or ``"absent"``."""
        if cell in self.core:
            return "core"
        if cell in self.noncore:
            return "noncore"
        if cell in self.undetermined:
            return "undetermined"
        return "absent"

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def add_core_cell(self, cell: CellId) -> None:
        """Register ``cell`` as core (promoting from any other class)."""
        self.noncore.discard(cell)
        self.undetermined.discard(cell)
        self.core.add(cell)

    def add_noncore_cell(self, cell: CellId) -> None:
        """Register ``cell`` as determined non-core."""
        if cell in self.core:
            raise ValueError(f"cell {cell} is already core")
        self.undetermined.discard(cell)
        self.noncore.add(cell)

    def add_undetermined_cell(self, cell: CellId) -> None:
        """Register ``cell`` as undetermined unless already determined."""
        if cell not in self.core and cell not in self.noncore:
            self.undetermined.add(cell)

    def add_edge(self, src: CellId, dst: CellId, edge_type: EdgeType) -> None:
        """Add (or upgrade) a directed edge ``src -> dst``.

        An existing undetermined edge is overwritten by a determined
        type; a determined type is never downgraded.
        """
        key = (src, dst)
        current = self.edges.get(key)
        if current is None or current is EdgeType.UNDETERMINED:
            self.edges[key] = edge_type
            if edge_type is EdgeType.UNDETERMINED:
                self._undetermined_edges.add(key)
                self._undetermined_by_dst.setdefault(dst, set()).add(key)
            else:
                if current is EdgeType.UNDETERMINED:
                    self._undetermined_edges.discard(key)
                    self._unindex(key)
                if edge_type is EdgeType.FULL:
                    self._pending_full.append(key)

    def _unindex(self, key: tuple[CellId, CellId]) -> None:
        bucket = self._undetermined_by_dst.get(key[1])
        if bucket is not None:
            bucket.discard(key)
            if not bucket:
                del self._undetermined_by_dst[key[1]]

    # ------------------------------------------------------------------
    # Merging machinery (Sections 6.1.2 - 6.1.4)
    # ------------------------------------------------------------------

    def copy(self) -> "CellGraph":
        """Shallow-structure copy (cell ids are immutable tuples)."""
        clone = CellGraph()
        clone.core = set(self.core)
        clone.noncore = set(self.noncore)
        clone.undetermined = set(self.undetermined)
        clone.edges = dict(self.edges)
        clone._undetermined_edges = set(self._undetermined_edges)
        clone._undetermined_by_dst = {
            dst: set(keys) for dst, keys in self._undetermined_by_dst.items()
        }
        clone._full_forest = self._full_forest.copy()
        clone._pending_full = list(self._pending_full)
        return clone

    def absorb(self, other: "CellGraph") -> "CellGraph":
        """In-place merger ``self |= other`` (Definition 6.2).

        Same semantics as :meth:`merge` without copying ``self`` — the
        tournament's hot path.  ``other`` is not modified.
        """
        self.core |= other.core
        self.noncore |= other.noncore
        self.noncore -= self.core
        self.undetermined |= other.undetermined
        self.undetermined -= self.core
        self.undetermined -= self.noncore
        edges = self.edges
        undetermined_edges = self._undetermined_edges
        by_dst = self._undetermined_by_dst
        for key, edge_type in other.edges.items():
            current = edges.get(key)
            if current is None or current is EdgeType.UNDETERMINED:
                edges[key] = edge_type
                if edge_type is EdgeType.UNDETERMINED:
                    if key not in undetermined_edges:
                        undetermined_edges.add(key)
                        by_dst.setdefault(key[1], set()).add(key)
                elif current is EdgeType.UNDETERMINED:
                    undetermined_edges.discard(key)
                    self._unindex(key)
        self._full_forest.merge_from(other._full_forest)
        self._pending_full.extend(other._pending_full)
        return self

    def absorb_resolving(self, other: "CellGraph") -> int:
        """Fused merger + edge-type detection (Secs 6.1.2-6.1.3).

        Equivalent to ``self.absorb(other)`` followed by
        :meth:`detect_edge_types`, but only touches the edges that can
        actually resolve in this match: an undetermined edge resolves
        exactly when the *other* side determines its destination, so the
        work per tournament match is proportional to what changed, not
        to the graph size.  Returns the number of edges resolved.
        """
        resolved = 0
        other_determined = other.core | other.noncore
        self.core |= other.core
        self.noncore |= other.noncore
        self.noncore -= self.core
        self.undetermined |= other.undetermined
        self.undetermined -= self.core
        self.undetermined -= self.noncore
        core = self.core
        noncore = self.noncore
        edges = self.edges
        undetermined_edges = self._undetermined_edges
        by_dst = self._undetermined_by_dst
        pending = self._pending_full
        # My old undetermined edges against the other side's verdicts.
        for dst in other_determined & by_dst.keys():
            edge_type = EdgeType.FULL if dst in core else EdgeType.PARTIAL
            keys = by_dst.pop(dst)
            for key in keys:
                edges[key] = edge_type
                if edge_type is EdgeType.FULL:
                    pending.append(key)
            undetermined_edges.difference_update(keys)
            resolved += len(keys)
        # The other side's edges, classifying undetermined ones on entry.
        for key, edge_type in other.edges.items():
            current = edges.get(key)
            if current is not None and current is not EdgeType.UNDETERMINED:
                continue
            newly_full = False
            if edge_type is EdgeType.UNDETERMINED:
                dst = key[1]
                if dst in core:
                    edge_type = EdgeType.FULL
                    newly_full = True
                    resolved += 1
                elif dst in noncore:
                    edge_type = EdgeType.PARTIAL
                    resolved += 1
            edges[key] = edge_type
            if edge_type is EdgeType.UNDETERMINED:
                if key not in undetermined_edges:
                    undetermined_edges.add(key)
                    by_dst.setdefault(key[1], set()).add(key)
            else:
                if current is EdgeType.UNDETERMINED:
                    undetermined_edges.discard(key)
                    self._unindex(key)
                # Only edges *resolved in this match* are queued for the
                # forest test.  An incoming already-full edge is either a
                # tree edge of the other branch (its connectivity arrives
                # via merge_from — re-testing it against that very
                # connectivity would delete it) or still in the other
                # side's own pending list, extended below.
                if newly_full:
                    pending.append(key)
        self._full_forest.merge_from(other._full_forest)
        self._pending_full.extend(other._pending_full)
        return resolved

    @classmethod
    def merge(cls, a: "CellGraph", b: "CellGraph") -> "CellGraph":
        """Single merger ``a | b`` (Definition 6.2).

        Vertex classes are united with undetermined cells promoted to
        whatever the other graph determined.  Edge sets are united; the
        paper notes ``E1 & E2 = {}`` because partitions are disjoint, but
        a duplicate key with a determined type wins over undetermined.
        """
        return a.copy().absorb(b)

    def detect_edge_types(self) -> int:
        """Resolve undetermined edges against the current vertex classes
        (Section 6.1.3).  Returns the number of edges resolved.

        Scans the *distinct destinations* of undetermined edges — an
        edge's type is a function of its destination's class — so a
        tournament match costs O(unresolved destinations) instead of
        O(unresolved edges).
        """
        resolved = 0
        core = self.core
        noncore = self.noncore
        for dst in list(self._undetermined_by_dst):
            if dst in core:
                edge_type = EdgeType.FULL
            elif dst in noncore:
                edge_type = EdgeType.PARTIAL
            else:
                continue
            keys = self._undetermined_by_dst.pop(dst)
            for key in keys:
                self.edges[key] = edge_type
                if edge_type is EdgeType.FULL:
                    self._pending_full.append(key)
            self._undetermined_edges.difference_update(keys)
            resolved += len(keys)
        return resolved

    def reduce_full_edges(self) -> int:
        """Drop redundant full edges via a spanning forest (Sec 6.1.4).

        Full edges are treated as undirected; any full edge that closes a
        cycle among core cells is removed.  Returns the number removed.
        Connectivity (and therefore the final clustering) is unchanged.
        """
        removed = 0
        forest = self._full_forest
        for key in self._pending_full:
            if self.edges.get(key) is not EdgeType.FULL:
                continue  # stale pending entry
            if not forest.union(key[0], key[1]):
                del self.edges[key]
                removed += 1
        self._pending_full.clear()
        return removed

    def reduce_all_full_edges(self) -> int:
        """Full-scan edge reduction: rebuild the forest over every full
        edge currently present and drop the redundant ones.

        Used once after a tournament: cross-branch duplicate full edges
        (the reversed pair resolved in two different branches) are not
        *pending* in either branch, so the incremental pass cannot see
        them; one linear sweep at the end removes them.
        """
        self._full_forest = UnionFind()
        self._pending_full = [
            key for key, t in self.edges.items() if t is EdgeType.FULL
        ]
        return self.reduce_full_edges()

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------

    def validate(self) -> None:
        """Check structural invariants; raises :class:`ValueError` on
        violation.  Intended for tests and debugging."""
        if self.core & self.noncore:
            raise ValueError("a cell is both core and non-core")
        if (self.core | self.noncore) & self.undetermined:
            raise ValueError("a determined cell is also undetermined")
        known = self.core | self.noncore | self.undetermined
        for (src, dst), edge_type in self.edges.items():
            if src not in known or dst not in known:
                raise ValueError(f"edge ({src}, {dst}) references unknown vertex")
            if src in self.noncore:
                raise ValueError(f"edge source {src} is a non-core cell")
            if edge_type is EdgeType.FULL and (
                src not in self.core or dst not in self.core
            ):
                raise ValueError(f"full edge ({src}, {dst}) endpoint not core")
            if edge_type is EdgeType.PARTIAL and dst not in self.noncore:
                raise ValueError(f"partial edge ({src}, {dst}) target not non-core")
