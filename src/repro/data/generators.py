"""Synthetic workload generators.

Covers everything the paper's evaluation synthesizes:

* :func:`moons`, :func:`blobs`, :func:`chameleon_like` — the accuracy
  data sets of Sec 7.5 / Fig 16 / Table 4 (each 100k points there).
* :func:`gaussian_mixture` — the Appendix B.1 generator: ten
  multivariate Gaussians with means uniform over ``[0, 100]^d`` and an
  isotropic inverse covariance ``alpha * I``, where ``alpha`` is the
  *skewness coefficient*: larger ``alpha`` concentrates points more
  tightly around the means (Fig 18).

All generators take a seed and return float64 arrays of shape ``(n, d)``.
"""

from __future__ import annotations

import numpy as np

__all__ = ["moons", "blobs", "chameleon_like", "gaussian_mixture", "ring", "spiral"]


def moons(n: int, *, noise: float = 0.06, seed: int | None = 0) -> np.ndarray:
    """Two interleaving half-circles ("Moons" of Table 4), 2-d.

    Parameters
    ----------
    n:
        Total number of points (split evenly across the two moons).
    noise:
        Standard deviation of Gaussian jitter added to each point.
    seed:
        RNG seed.
    """
    if n < 2:
        raise ValueError("n must be >= 2")
    rng = np.random.default_rng(seed)
    n_upper = n // 2
    n_lower = n - n_upper
    theta_upper = rng.uniform(0.0, np.pi, n_upper)
    theta_lower = rng.uniform(0.0, np.pi, n_lower)
    upper = np.stack([np.cos(theta_upper), np.sin(theta_upper)], axis=1)
    lower = np.stack([1.0 - np.cos(theta_lower), 0.5 - np.sin(theta_lower)], axis=1)
    pts = np.concatenate([upper, lower])
    pts += rng.normal(0.0, noise, pts.shape)
    return pts


def blobs(
    n: int,
    *,
    centers: int = 3,
    std: float = 0.35,
    spread: float = 6.0,
    dim: int = 2,
    seed: int | None = 0,
) -> np.ndarray:
    """Isotropic Gaussian blobs ("Blobs" of Table 4).

    Parameters
    ----------
    n:
        Total number of points, split evenly among ``centers`` blobs.
    centers:
        Number of blobs.
    std:
        Per-blob standard deviation.
    spread:
        Blob centers are drawn uniformly from ``[0, spread]^dim``.
    dim:
        Dimensionality.
    seed:
        RNG seed.
    """
    if centers < 1:
        raise ValueError("centers must be >= 1")
    rng = np.random.default_rng(seed)
    # Rejection-sample centers at least 8*std apart so the blobs are
    # actual separate clusters (falls back to whatever it has after a
    # bounded number of tries when the space is too crowded).
    means = [rng.uniform(0.0, spread, dim)]
    attempts = 0
    while len(means) < centers and attempts < 1000:
        candidate = rng.uniform(0.0, spread, dim)
        attempts += 1
        if all(np.linalg.norm(candidate - m) >= 8.0 * std for m in means):
            means.append(candidate)
    while len(means) < centers:  # crowded space: give up on separation
        means.append(rng.uniform(0.0, spread, dim))
    means = np.asarray(means)
    assignment = np.repeat(np.arange(centers), int(np.ceil(n / centers)))[:n]
    pts = means[assignment] + rng.normal(0.0, std, (n, dim))
    return pts


def ring(n: int, *, center=(0.0, 0.0), radius: float = 1.0, noise: float = 0.05,
         seed: int | None = 0) -> np.ndarray:
    """Points on a 2-d ring with Gaussian radial jitter."""
    rng = np.random.default_rng(seed)
    theta = rng.uniform(0.0, 2 * np.pi, n)
    r = radius + rng.normal(0.0, noise, n)
    return np.stack(
        [center[0] + r * np.cos(theta), center[1] + r * np.sin(theta)], axis=1
    )


def spiral(n: int, *, center=(0.0, 0.0), turns: float = 2.0, scale: float = 1.0,
           noise: float = 0.03, seed: int | None = 0) -> np.ndarray:
    """Points along a 2-d Archimedean spiral with jitter."""
    rng = np.random.default_rng(seed)
    t = np.sqrt(rng.uniform(0.05, 1.0, n)) * turns * 2 * np.pi
    r = scale * t / (turns * 2 * np.pi)
    pts = np.stack(
        [center[0] + r * np.cos(t), center[1] + r * np.sin(t)], axis=1
    )
    return pts + rng.normal(0.0, noise, pts.shape)


def chameleon_like(n: int, *, seed: int | None = 0) -> np.ndarray:
    """A Chameleon-style data set: clusters of heterogeneous shape.

    The Chameleon benchmark (Karypis et al., 1999) mixes elongated,
    curved, and compact clusters with background noise.  This generator
    reproduces that character with two spirals, a ring, two dense blobs,
    an elongated stripe, and 5% uniform noise.
    """
    if n < 20:
        raise ValueError("n must be >= 20")
    rng = np.random.default_rng(seed)
    weights = np.array([0.18, 0.18, 0.17, 0.14, 0.14, 0.14, 0.05])
    counts = np.floor(weights * n).astype(int)
    counts[-1] = n - counts[:-1].sum()
    seed_base = int(rng.integers(0, 2**31)) if seed is None else seed
    parts = [
        spiral(counts[0], center=(0.0, 0.0), turns=1.8, scale=2.2,
               noise=0.035, seed=seed_base + 1),
        spiral(counts[1], center=(6.0, 0.5), turns=1.8, scale=2.2,
               noise=0.035, seed=seed_base + 2),
        ring(counts[2], center=(3.0, 4.5), radius=1.4, noise=0.05,
             seed=seed_base + 3),
        rng.normal([0.5, 4.8], 0.28, (counts[3], 2)),
        rng.normal([6.2, 4.6], 0.28, (counts[4], 2)),
        # Elongated stripe.
        np.stack(
            [
                rng.uniform(-1.5, 7.5, counts[5]),
                rng.normal(-2.6, 0.12, counts[5]),
            ],
            axis=1,
        ),
        # Background noise.
        rng.uniform([-2.5, -3.5], [8.5, 6.5], (counts[6], 2)),
    ]
    return np.concatenate(parts)


def gaussian_mixture(
    n: int,
    *,
    dim: int = 3,
    components: int = 10,
    alpha: float = 1.0,
    value_range: tuple[float, float] = (0.0, 100.0),
    seed: int | None = 0,
) -> np.ndarray:
    """The Appendix B.1 Gaussian-mixture generator.

    Each of ``components`` multivariate Gaussians has a mean drawn
    uniformly from ``value_range`` per dimension and the isotropic
    inverse covariance ``alpha * I`` — i.e. covariance ``(1/alpha) * I``
    and standard deviation ``1/sqrt(alpha)``.  Larger ``alpha`` (the
    *skewness coefficient*) clusters points more tightly around the
    means, as in Fig 18.

    Points outside ``value_range`` are kept (the tails carry the
    low-density structure DBSCAN must reject as noise).
    """
    if components < 1:
        raise ValueError("components must be >= 1")
    if alpha <= 0:
        raise ValueError("alpha must be positive")
    rng = np.random.default_rng(seed)
    lo, hi = value_range
    means = rng.uniform(lo, hi, (components, dim))
    std = 1.0 / np.sqrt(alpha)
    assignment = rng.integers(0, components, n)
    return means[assignment] + rng.normal(0.0, std, (n, dim))
