"""Laptop-scale stand-ins for the paper's real-world data sets (Table 3).

The originals (GeoLife 808 MB ... TeraClickLog 362 GB) are proprietary
downloads far beyond a reproduction box; DESIGN.md documents the
substitution.  Each stand-in reproduces the *statistical character* that
drives the paper's results:

* **GeoLife** — "heavily skewed because a large proportion of users
  stayed in Beijing while a small proportion ... were widely distributed
  in more than 30 cities": one dominant dense metro blob, 30 small city
  blobs, sparse wide background; 3-d (lat, lon, altitude-like).
* **Cosmo50** — N-body simulation: matter concentrated along filaments
  connecting halos; 3-d.
* **OpenStreetMap** — GPS traces: points strung along road-like
  polylines plus dense towns; 2-d.
* **TeraClickLog** — click logs with 13 numeric features: a mixture of
  many moderately separated Gaussians plus background; 13-d (exercises
  the kd-tree candidate search, since offset enumeration is infeasible
  at d = 13).

Every function takes ``n`` and ``seed`` and returns ``(n, d)`` float64
points.  :data:`DATASETS` maps the paper's data-set names to
``(generator, default_eps10)`` where ``default_eps10`` plays the role of
the paper's ε10 — an ε that yields on the order of ten clusters at the
default bench size.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

import numpy as np

__all__ = [
    "geolife_like",
    "cosmo50_like",
    "openstreetmap_like",
    "teraclicklog_like",
    "DatasetSpec",
    "DATASETS",
]


def geolife_like(n: int, *, seed: int | None = 0) -> np.ndarray:
    """Heavily skewed 3-d trajectory-like data (GeoLife stand-in)."""
    if n < 10:
        raise ValueError("n must be >= 10")
    rng = np.random.default_rng(seed)
    n_metro = int(n * 0.70)
    n_cities = int(n * 0.25)
    n_background = n - n_metro - n_cities
    # The dominant metro area ("Beijing"): 70% of all points in a region
    # that is tiny relative to the whole domain but still spans many
    # eps-cells — like the real city, which is far larger than the
    # paper's eps yet a speck on the map of China.
    metro_center = np.array([40.0, 116.0, 50.0])
    metro = metro_center + rng.normal(0.0, [1.5, 1.5, 12.0], (n_metro, 3))
    # A dozen far-flung city blobs of varying (small) size.
    n_city_blobs = 12
    city_centers = np.stack(
        [
            rng.uniform(20.0, 50.0, n_city_blobs),
            rng.uniform(95.0, 130.0, n_city_blobs),
            rng.uniform(0.0, 500.0, n_city_blobs),
        ],
        axis=1,
    )
    assignment = rng.integers(0, n_city_blobs, n_cities)
    cities = city_centers[assignment] + rng.normal(
        0.0, [0.4, 0.4, 8.0], (n_cities, 3)
    )
    background = np.stack(
        [
            rng.uniform(15.0, 55.0, n_background),
            rng.uniform(90.0, 135.0, n_background),
            rng.uniform(0.0, 1000.0, n_background),
        ],
        axis=1,
    )
    return np.concatenate([metro, cities, background])


def cosmo50_like(n: int, *, seed: int | None = 0) -> np.ndarray:
    """Filamentary 3-d structure (Cosmo50 N-body stand-in)."""
    if n < 10:
        raise ValueError("n must be >= 10")
    rng = np.random.default_rng(seed)
    box = 50.0
    n_halos = 12
    halos = rng.uniform(5.0, box - 5.0, (n_halos, 3))
    # Filaments connect random halo pairs.
    n_filaments = 16
    pairs = rng.integers(0, n_halos, (n_filaments, 2))
    n_halo_pts = int(n * 0.45)
    n_filament_pts = int(n * 0.45)
    n_background = n - n_halo_pts - n_filament_pts
    halo_assignment = rng.integers(0, n_halos, n_halo_pts)
    halo_pts = halos[halo_assignment] + rng.normal(0.0, 0.6, (n_halo_pts, 3))
    filament_assignment = rng.integers(0, n_filaments, n_filament_pts)
    t = rng.uniform(0.0, 1.0, n_filament_pts)[:, None]
    a = halos[pairs[filament_assignment, 0]]
    b = halos[pairs[filament_assignment, 1]]
    filament_pts = a + t * (b - a) + rng.normal(0.0, 0.25, (n_filament_pts, 3))
    background = rng.uniform(0.0, box, (n_background, 3))
    return np.concatenate([halo_pts, filament_pts, background])


def openstreetmap_like(n: int, *, seed: int | None = 0) -> np.ndarray:
    """Road-stroke 2-d GPS data (OpenStreetMap stand-in)."""
    if n < 10:
        raise ValueError("n must be >= 10")
    rng = np.random.default_rng(seed)
    extent = 100.0
    n_roads = 25
    n_towns = 12
    n_road_pts = int(n * 0.55)
    n_town_pts = int(n * 0.40)
    n_background = n - n_road_pts - n_town_pts
    # Roads: jittered line segments between random endpoints.
    starts = rng.uniform(0.0, extent, (n_roads, 2))
    ends = starts + rng.normal(0.0, extent / 3.0, (n_roads, 2))
    road_assignment = rng.integers(0, n_roads, n_road_pts)
    t = rng.uniform(0.0, 1.0, n_road_pts)[:, None]
    road_pts = (
        starts[road_assignment]
        + t * (ends[road_assignment] - starts[road_assignment])
        + rng.normal(0.0, 0.12, (n_road_pts, 2))
    )
    towns = rng.uniform(5.0, extent - 5.0, (n_towns, 2))
    town_assignment = rng.integers(0, n_towns, n_town_pts)
    town_pts = towns[town_assignment] + rng.normal(0.0, 0.8, (n_town_pts, 2))
    background = rng.uniform(-10.0, extent + 10.0, (n_background, 2))
    return np.concatenate([road_pts, town_pts, background])


def teraclicklog_like(n: int, *, seed: int | None = 0) -> np.ndarray:
    """13-dimensional click-log-like mixture (TeraClickLog stand-in).

    Click-log features are strongly correlated, so each mixture
    component varies along a low-dimensional *active* subspace (3 of the
    13 axes) with only slight jitter elsewhere — giving the data the low
    intrinsic dimensionality of real logs while still exercising the
    13-d code paths (kd-tree candidate search, bit-packed sub-cells).
    """
    if n < 10:
        raise ValueError("n must be >= 10")
    rng = np.random.default_rng(seed)
    dim = 13
    n_components = 10
    n_active = 3
    means = rng.uniform(0.0, 100.0, (n_components, dim))
    stds = np.full((n_components, dim), 0.05)
    for component in range(n_components):
        active = rng.choice(dim, n_active, replace=False)
        stds[component, active] = 2.0
    n_clustered = int(n * 0.9)
    n_background = n - n_clustered
    assignment = rng.integers(0, n_components, n_clustered)
    clustered = means[assignment] + rng.normal(0.0, 1.0, (n_clustered, dim)) * stds[
        assignment
    ]
    background = rng.uniform(-20.0, 120.0, (n_background, dim))
    return np.concatenate([clustered, background])


@dataclass(frozen=True)
class DatasetSpec:
    """A named data-set stand-in with its tuned ε10 and dimension.

    ``eps10`` is the ε yielding roughly ten clusters at ``default_n``
    points, mirroring the paper's per-data-set ε10 (Sec 7.1.4); the
    benches sweep ``{eps10/8, eps10/4, eps10/2, eps10}``.
    """

    name: str
    generator: Callable[..., np.ndarray]
    dim: int
    eps10: float
    default_n: int
    min_pts: int


#: Stand-ins keyed by the paper's data-set names (Table 3).
DATASETS: dict[str, DatasetSpec] = {
    "GeoLife": DatasetSpec("GeoLife", geolife_like, 3, 3.0, 20_000, 40),
    "Cosmo50": DatasetSpec("Cosmo50", cosmo50_like, 3, 1.2, 20_000, 40),
    "OpenStreetMap": DatasetSpec(
        "OpenStreetMap", openstreetmap_like, 2, 3.5, 20_000, 40
    ),
    "TeraClickLog": DatasetSpec(
        "TeraClickLog", teraclicklog_like, 13, 4.0, 10_000, 40
    ),
}
