"""Data substrate: synthetic generators and data-set stand-ins.

:mod:`repro.data.generators` provides the paper's synthetic workloads —
Moons / Blobs / Chameleon-like (Sec 7.5) and the skewness-controlled
Gaussian mixtures of Appendix B.1 — and :mod:`repro.data.datasets`
provides laptop-scale statistical stand-ins for the four real-world
data sets of Table 3 (see DESIGN.md for the substitution rationale).
"""

from repro.data.datasets import (
    DATASETS,
    cosmo50_like,
    geolife_like,
    openstreetmap_like,
    teraclicklog_like,
)
from repro.data.generators import (
    blobs,
    chameleon_like,
    gaussian_mixture,
    moons,
)
from repro.data.io import load_points, save_points
from repro.data.streaming import (
    ArraySource,
    ChunkedNpzSource,
    MemmapSource,
    PointSource,
    as_point_source,
    open_point_source,
    save_chunked_npz,
)

__all__ = [
    "moons",
    "blobs",
    "chameleon_like",
    "gaussian_mixture",
    "DATASETS",
    "geolife_like",
    "cosmo50_like",
    "openstreetmap_like",
    "teraclicklog_like",
    "load_points",
    "save_points",
    "PointSource",
    "ArraySource",
    "MemmapSource",
    "ChunkedNpzSource",
    "as_point_source",
    "open_point_source",
    "save_chunked_npz",
]
