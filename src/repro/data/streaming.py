"""Out-of-core point ingestion: chunked readers over on-disk data sets.

``RPDBSCAN.fit`` traditionally receives an ``(n, d)`` array that stays
resident for the whole run.  At the paper's scale (2.8B-4.4B points)
that is impossible, so this module abstracts the data set behind a
:class:`PointSource`: a cheap, picklable descriptor that can

* stream the points in bounded chunks (:meth:`PointSource.iter_chunks`,
  used by the driver to bucket points into cells without holding them),
* materialize an arbitrary row subset (:meth:`PointSource.take`, used by
  workers to build their partition's point block per task).

Three sources are provided: :class:`ArraySource` wraps an in-memory
array (the compatibility path), :class:`MemmapSource` reopens a ``.npy``
file with ``np.memmap`` lazily in every process, and
:class:`ChunkedNpzSource` reads the chunked ``.npz`` container written
by :func:`save_chunked_npz`.  All three yield bit-identical float64
rows, so clustering results do not depend on the ingestion path.
"""

from __future__ import annotations

import abc
import zipfile
from pathlib import Path
from typing import Iterator

import numpy as np

__all__ = [
    "DEFAULT_CHUNK_ROWS",
    "PointSource",
    "ArraySource",
    "MemmapSource",
    "ChunkedNpzSource",
    "as_point_source",
    "open_point_source",
    "save_chunked_npz",
]

#: Rows per streamed chunk — 2^18 rows of a 3-d float64 set is ~6 MiB.
DEFAULT_CHUNK_ROWS = 1 << 18


class PointSource(abc.ABC):
    """A data set of ``(n, d)`` float64 points addressable by row.

    Implementations must be cheap to pickle (ship a *descriptor*, never
    the data) and must return identical float64 values through both
    access paths, because partitioning consumes chunks on the driver
    while workers re-materialize the same rows through :meth:`take`.
    """

    @property
    @abc.abstractmethod
    def num_points(self) -> int:
        """Number of rows ``n``."""

    @property
    @abc.abstractmethod
    def dim(self) -> int:
        """Number of columns ``d``."""

    @abc.abstractmethod
    def iter_chunks(self) -> Iterator[tuple[int, np.ndarray]]:
        """Yield ``(start_row, chunk)`` pairs covering all rows in order.

        ``chunk`` is a float64 ``(m, d)`` array with ``m >= 1`` (empty
        sources yield nothing).
        """

    @abc.abstractmethod
    def take(self, indices: np.ndarray) -> np.ndarray:
        """Materialize the given rows, in the given order, as float64.

        The result is a fresh writable array (never a view into shared
        state) so callers may keep it across chunk boundaries.
        """

    def __len__(self) -> int:
        return self.num_points

    def materialize(self) -> np.ndarray:
        """The whole data set as one in-memory ``(n, d)`` array."""
        out = np.empty((self.num_points, self.dim), dtype=np.float64)
        for start, chunk in self.iter_chunks():
            out[start : start + chunk.shape[0]] = chunk
        return out


def _check_indices(indices: np.ndarray) -> np.ndarray:
    idx = np.asarray(indices, dtype=np.int64)
    if idx.ndim != 1:
        raise ValueError("indices must be a 1-d integer array")
    return idx


class ArraySource(PointSource):
    """A :class:`PointSource` over an in-memory ``(n, d)`` array.

    The compatibility wrapper ``fit`` uses for plain arrays.  Do not
    wrap an ``np.memmap`` in it when the source must cross a process
    boundary — a pickled memmap materializes every byte into the
    stream; use :class:`MemmapSource` instead (see
    :func:`as_point_source`).
    """

    def __init__(self, points: np.ndarray, *, chunk_rows: int = DEFAULT_CHUNK_ROWS) -> None:
        pts = np.asarray(points, dtype=np.float64)
        if pts.ndim != 2:
            raise ValueError("points must be (n, d)")
        if chunk_rows < 1:
            raise ValueError("chunk_rows must be >= 1")
        self._pts = pts
        self._chunk_rows = int(chunk_rows)

    @property
    def num_points(self) -> int:
        return self._pts.shape[0]

    @property
    def dim(self) -> int:
        return self._pts.shape[1]

    def iter_chunks(self) -> Iterator[tuple[int, np.ndarray]]:
        for start in range(0, self._pts.shape[0], self._chunk_rows):
            yield start, self._pts[start : start + self._chunk_rows]

    def take(self, indices: np.ndarray) -> np.ndarray:
        return self._pts[_check_indices(indices)]


class MemmapSource(PointSource):
    """A :class:`PointSource` over a memory-mapped ``.npy`` file.

    Only the ``(path, dtype, shape, offset)`` descriptor is pickled; the
    map itself is opened lazily — once per process — so a worker pays
    only for the pages its partitions actually touch.
    """

    def __init__(
        self,
        path: str | Path,
        *,
        dtype: np.dtype | str,
        shape: tuple[int, int],
        offset: int = 0,
        chunk_rows: int = DEFAULT_CHUNK_ROWS,
    ) -> None:
        if len(shape) != 2:
            raise ValueError("shape must be (n, d)")
        if chunk_rows < 1:
            raise ValueError("chunk_rows must be >= 1")
        self._path = str(path)
        self._dtype = np.dtype(dtype)
        self._shape = (int(shape[0]), int(shape[1]))
        self._offset = int(offset)
        self._chunk_rows = int(chunk_rows)
        self._mm: np.memmap | None = None

    @classmethod
    def from_npy(cls, path: str | Path, *, chunk_rows: int = DEFAULT_CHUNK_ROWS) -> "MemmapSource":
        """Open an existing ``.npy`` file as a memmapped source."""
        mm = np.load(path, mmap_mode="r")
        if mm.ndim == 1:
            # Mirror load_points: a 1-d file is one column of scalars.
            return cls(
                path,
                dtype=mm.dtype,
                shape=(mm.shape[0], 1),
                offset=mm.offset,
                chunk_rows=chunk_rows,
            )
        if mm.ndim != 2:
            raise ValueError(f"{path} does not contain a 2-d point array")
        return cls(
            path, dtype=mm.dtype, shape=mm.shape, offset=mm.offset, chunk_rows=chunk_rows
        )

    @classmethod
    def from_memmap(cls, mm: np.memmap, *, chunk_rows: int = DEFAULT_CHUNK_ROWS) -> "MemmapSource":
        """Wrap a live ``np.memmap`` by its on-disk coordinates."""
        if mm.filename is None:
            raise ValueError("memmap has no backing file")
        shape = mm.shape if mm.ndim == 2 else (mm.shape[0], 1)
        if mm.ndim not in (1, 2):
            raise ValueError("memmap must be 1-d or 2-d")
        return cls(
            mm.filename, dtype=mm.dtype, shape=shape, offset=mm.offset, chunk_rows=chunk_rows
        )

    @property
    def num_points(self) -> int:
        return self._shape[0]

    @property
    def dim(self) -> int:
        return self._shape[1]

    @property
    def _map(self) -> np.memmap:
        if self._mm is None:
            self._mm = np.memmap(
                self._path,
                dtype=self._dtype,
                mode="r",
                shape=self._shape,
                offset=self._offset,
            )
        return self._mm

    def iter_chunks(self) -> Iterator[tuple[int, np.ndarray]]:
        mm = self._map
        for start in range(0, self._shape[0], self._chunk_rows):
            yield start, np.asarray(mm[start : start + self._chunk_rows], dtype=np.float64)

    def take(self, indices: np.ndarray) -> np.ndarray:
        # Fancy indexing a memmap materializes exactly the selected rows.
        return np.asarray(self._map[_check_indices(indices)], dtype=np.float64)

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state["_mm"] = None  # reopen lazily in the receiving process
        return state


class ChunkedNpzSource(PointSource):
    """A :class:`PointSource` over the chunked ``.npz`` container of
    :func:`save_chunked_npz`.

    The container holds ``chunk_000000, chunk_000001, ...`` members plus
    ``offsets`` (their exclusive row prefix sums) and ``shape``; only
    the members a :meth:`take` call needs are decompressed.
    """

    def __init__(self, path: str | Path) -> None:
        self._path = str(path)
        with np.load(self._path) as archive:
            if "offsets" not in archive or "shape" not in archive:
                raise ValueError(f"{path} is not a chunked point container")
            self._offsets = np.asarray(archive["offsets"], dtype=np.int64)
            n, d = (int(v) for v in archive["shape"])
        self._shape = (n, d)

    @property
    def num_points(self) -> int:
        return self._shape[0]

    @property
    def dim(self) -> int:
        return self._shape[1]

    @property
    def num_chunks(self) -> int:
        return self._offsets.shape[0] - 1

    def iter_chunks(self) -> Iterator[tuple[int, np.ndarray]]:
        with np.load(self._path) as archive:
            for index in range(self.num_chunks):
                chunk = np.asarray(archive[f"chunk_{index:06d}"], dtype=np.float64)
                if chunk.shape[0]:
                    yield int(self._offsets[index]), chunk

    def take(self, indices: np.ndarray) -> np.ndarray:
        idx = _check_indices(indices)
        out = np.empty((idx.shape[0], self.dim), dtype=np.float64)
        if idx.shape[0] == 0:
            return out
        which = np.searchsorted(self._offsets, idx, side="right") - 1
        with np.load(self._path) as archive:
            for chunk_index in np.unique(which):
                chunk = np.asarray(
                    archive[f"chunk_{chunk_index:06d}"], dtype=np.float64
                )
                sel = which == chunk_index
                out[sel] = chunk[idx[sel] - self._offsets[chunk_index]]
        return out


def save_chunked_npz(
    path: str | Path, points: np.ndarray, *, chunk_rows: int = DEFAULT_CHUNK_ROWS
) -> None:
    """Write ``points`` as a chunked ``.npz`` container.

    Uncompressed (``np.savez``) so :meth:`ChunkedNpzSource.take` pays
    only the copy of the members it opens.
    """
    pts = np.asarray(points, dtype=np.float64)
    if pts.ndim != 2:
        raise ValueError("points must be (n, d)")
    if chunk_rows < 1:
        raise ValueError("chunk_rows must be >= 1")
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    starts = list(range(0, pts.shape[0], chunk_rows)) or [0]
    members = {
        f"chunk_{i:06d}": pts[start : start + chunk_rows]
        for i, start in enumerate(starts)
    }
    offsets = np.array(starts + [pts.shape[0]], dtype=np.int64)
    np.savez(path, offsets=offsets, shape=np.array(pts.shape, dtype=np.int64), **members)


def as_point_source(data: "np.ndarray | PointSource") -> PointSource:
    """Coerce ``fit``'s accepted inputs to a :class:`PointSource`.

    Arrays wrap in :class:`ArraySource`; a file-backed ``np.memmap``
    becomes a :class:`MemmapSource` so pickling ships the descriptor,
    not the bytes.
    """
    if isinstance(data, PointSource):
        return data
    if isinstance(data, np.memmap) and data.filename is not None:
        return MemmapSource.from_memmap(data)
    return ArraySource(np.asarray(data, dtype=np.float64))


def open_point_source(path: str | Path, *, memmap: bool = True) -> PointSource:
    """Open an on-disk point set as a :class:`PointSource`.

    ``.npy`` maps the file (:class:`MemmapSource`) unless ``memmap`` is
    false; ``.npz`` requires the chunked container layout; other
    extensions fall back to an eager CSV read via
    :func:`repro.data.io.load_points`.
    """
    from repro.data.io import load_points

    path = Path(path)
    if path.suffix == ".npz":
        if not zipfile.is_zipfile(path):
            raise ValueError(f"{path} is not an npz archive")
        return ChunkedNpzSource(path)
    if path.suffix == ".npy" and memmap:
        return MemmapSource.from_npy(path)
    return ArraySource(load_points(path))
