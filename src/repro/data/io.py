"""Point-set I/O: CSV and NPY, format chosen by file extension.

The CLI and examples read and write data sets through these helpers so
the on-disk formats stay in one place.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

__all__ = ["save_points", "load_points", "save_labels", "load_labels"]


def save_points(path: str | Path, points: np.ndarray) -> None:
    """Write an ``(n, d)`` point array to ``path``.

    ``.npy`` saves the binary numpy format; anything else is written as
    comma-separated text with full float precision.
    """
    path = Path(path)
    pts = np.asarray(points, dtype=np.float64)
    if pts.ndim != 2:
        raise ValueError("points must be (n, d)")
    path.parent.mkdir(parents=True, exist_ok=True)
    if path.suffix == ".npy":
        np.save(path, pts)
    else:
        np.savetxt(path, pts, delimiter=",")


def load_points(path: str | Path) -> np.ndarray:
    """Read an ``(n, d)`` point array written by :func:`save_points`."""
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(path)
    if path.suffix == ".npy":
        pts = np.asarray(np.load(path), dtype=np.float64)
        # A 1-d array is n scalar observations — one column, not one row.
        if pts.ndim == 1:
            pts = pts.reshape(-1, 1)
    else:
        # ndmin=2 preserves orientation: a one-column file stays (n, 1)
        # and a one-row file stays (1, d).  (np.atleast_2d would turn a
        # 1-d read of a column file into a single n-dimensional point.)
        pts = np.loadtxt(path, delimiter=",", dtype=np.float64, ndmin=2)
    if pts.ndim != 2:
        raise ValueError(f"{path} does not contain a 2-d point array")
    return pts


def save_labels(path: str | Path, labels: np.ndarray) -> None:
    """Write a label vector (``-1`` = noise).

    ``.npy`` saves binary int64 (the cheap round trip for large query
    sets); anything else is one integer per line.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    out = np.asarray(labels, dtype=np.int64).reshape(-1)
    if path.suffix == ".npy":
        np.save(path, out)
    else:
        np.savetxt(path, out, fmt="%d")


def load_labels(path: str | Path) -> np.ndarray:
    """Read a label vector written by :func:`save_labels`."""
    path = Path(path)
    if path.suffix == ".npy":
        return np.asarray(np.load(path), dtype=np.int64).reshape(-1)
    return np.loadtxt(path, dtype=np.int64).reshape(-1)
