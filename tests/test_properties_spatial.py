"""Property-based tests for the spatial substrate and baselines' geometry."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.baselines.region_split import (
    partition_cost_based,
    partition_even_split,
    partition_reduced_boundary,
)
from repro.core.cells import CellGeometry
from repro.core.dictionary import CellDictionary
from repro.core.serialization import deserialize_dictionary, serialize_dictionary
from repro.spatial.distance import euclidean, pairwise_distances
from repro.spatial.kdtree import KDTree

SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

points_nd = arrays(
    np.float64,
    st.tuples(st.integers(3, 80), st.integers(1, 4)),
    elements=st.floats(-10, 10, allow_nan=False, width=32),
)


class TestDistanceProperties:
    @SETTINGS
    @given(points=points_nd)
    def test_triangle_inequality(self, points):
        if points.shape[0] < 3:
            return
        a, b, c = points[0], points[1], points[2]
        assert euclidean(a, c) <= euclidean(a, b) + euclidean(b, c) + 1e-9

    @SETTINGS
    @given(points=points_nd)
    def test_pairwise_symmetry_and_diagonal(self, points):
        dist = pairwise_distances(points, points)
        np.testing.assert_allclose(dist, dist.T, atol=1e-7)
        assert np.all(np.abs(np.diag(dist)) < 1e-5)

    @SETTINGS
    @given(points=points_nd, shift=st.floats(-5, 5, allow_nan=False))
    def test_translation_invariance(self, points, shift):
        moved = points + shift
        np.testing.assert_allclose(
            pairwise_distances(points, points),
            pairwise_distances(moved, moved),
            atol=1e-6,
        )


class TestKDTreeProperties:
    @SETTINGS
    @given(points=points_nd, radius=st.floats(0.1, 5.0))
    def test_ball_query_exactness(self, points, radius):
        tree = KDTree(points)
        center = points[0]
        got = set(tree.query_ball(center, radius).tolist())
        diff = points - center
        expected = set(
            np.nonzero(np.einsum("ij,ij->i", diff, diff) <= radius**2)[0].tolist()
        )
        assert got == expected

    @SETTINGS
    @given(points=points_nd)
    def test_nearest_is_self_when_indexed(self, points):
        tree = KDTree(points)
        idx, dist = tree.query_nearest(points[0])
        assert dist <= 1e-9


class TestRegionPartitionProperties:
    @SETTINGS
    @given(
        points=arrays(
            np.float64,
            st.tuples(st.integers(8, 120), st.just(2)),
            elements=st.floats(-5, 5, allow_nan=False, width=32),
        ),
        k=st.integers(1, 6),
        eps=st.floats(0.05, 1.0),
    )
    @pytest.mark.parametrize(
        "partitioner",
        [partition_even_split, partition_reduced_boundary, partition_cost_based],
    )
    def test_regions_cover_every_point_once(self, partitioner, points, k, eps):
        regions = partitioner(points, k, eps)
        ownership = np.zeros(points.shape[0], dtype=int)
        for region in regions:
            ownership += region.contains(points).astype(int)
        assert np.all(ownership == 1)
        assert 1 <= len(regions) <= k


class TestSerializationProperties:
    @SETTINGS
    @given(
        points=arrays(
            np.float64,
            st.tuples(st.integers(1, 60), st.just(2)),
            elements=st.floats(-8, 8, allow_nan=False, width=16),
        ),
        rho=st.sampled_from([1.0, 0.5, 0.1, 0.05, 0.01]),
        eps=st.floats(0.1, 2.0),
    )
    def test_roundtrip_preserves_summary(self, points, rho, eps):
        geometry = CellGeometry(eps, 2, rho)
        dictionary = CellDictionary.from_points(points, geometry)
        clone = deserialize_dictionary(serialize_dictionary(dictionary))
        assert clone.num_points == dictionary.num_points
        assert set(clone.cells) == set(dictionary.cells)
        for cell_id, summary in dictionary.cells.items():
            other = clone.cells[cell_id]
            got = {
                (tuple(c), int(n))
                for c, n in zip(other.sub_coords.tolist(), other.sub_counts)
            }
            want = {
                (tuple(c), int(n))
                for c, n in zip(summary.sub_coords.tolist(), summary.sub_counts)
            }
            assert got == want


class TestIncrementalDictionaryProperties:
    @SETTINGS
    @given(
        first=arrays(
            np.float64,
            st.tuples(st.integers(1, 40), st.just(2)),
            elements=st.floats(-5, 5, allow_nan=False, width=16),
        ),
        second=arrays(
            np.float64,
            st.tuples(st.integers(1, 40), st.just(2)),
            elements=st.floats(-5, 5, allow_nan=False, width=16),
        ),
    )
    def test_add_points_equals_fresh_build(self, first, second):
        geometry = CellGeometry(0.7, 2, 0.1)
        incremental = CellDictionary.from_points(first, geometry)
        incremental.add_points(second)
        fresh = CellDictionary.from_points(
            np.concatenate([first, second]), geometry
        )
        assert incremental.num_points == fresh.num_points
        assert set(incremental.cells) == set(fresh.cells)
        for cell_id in fresh.cells:
            assert (
                incremental.cells[cell_id].count == fresh.cells[cell_id].count
            )
