"""Unit tests for repro.graph.union_find."""

import pytest

from repro.graph.union_find import UnionFind


class TestBasics:
    def test_singletons(self):
        uf = UnionFind(["a", "b", "c"])
        assert len(uf) == 3
        assert uf.set_count == 3
        assert not uf.connected("a", "b")

    def test_union_returns_whether_merged(self):
        uf = UnionFind()
        assert uf.union(1, 2) is True
        assert uf.union(2, 1) is False

    def test_lazy_add_via_find(self):
        uf = UnionFind()
        assert uf.find("x") == "x"
        assert "x" in uf

    def test_transitivity(self):
        uf = UnionFind()
        uf.union(1, 2)
        uf.union(2, 3)
        uf.union(4, 5)
        assert uf.connected(1, 3)
        assert not uf.connected(1, 4)

    def test_set_count_decreases(self):
        uf = UnionFind(range(5))
        uf.union(0, 1)
        uf.union(2, 3)
        assert uf.set_count == 3
        uf.union(1, 3)
        assert uf.set_count == 2

    def test_tuple_items(self):
        uf = UnionFind()
        uf.union((0, 0), (0, 1))
        assert uf.connected((0, 1), (0, 0))


class TestGroups:
    def test_groups_partition_items(self):
        uf = UnionFind(range(6))
        uf.union(0, 1)
        uf.union(1, 2)
        uf.union(3, 4)
        groups = uf.groups()
        sizes = sorted(len(g) for g in groups.values())
        assert sizes == [1, 2, 3]
        members = sorted(x for g in groups.values() for x in g)
        assert members == list(range(6))

    def test_component_labels_dense_and_deterministic(self):
        def build():
            uf = UnionFind()
            uf.union("a", "b")
            uf.union("c", "d")
            uf.add("e")
            return uf.component_labels()

        labels1 = build()
        labels2 = build()
        assert labels1 == labels2
        assert set(labels1.values()) == {0, 1, 2}
        assert labels1["a"] == labels1["b"]
        assert labels1["c"] == labels1["d"]
        assert labels1["a"] != labels1["c"]


class TestScale:
    def test_long_chain(self):
        uf = UnionFind()
        n = 10_000
        for i in range(n - 1):
            uf.union(i, i + 1)
        assert uf.set_count == 1
        assert uf.connected(0, n - 1)

    @pytest.mark.parametrize("n", [1, 2, 100])
    def test_all_singletons(self, n):
        uf = UnionFind(range(n))
        assert uf.set_count == n


class TestCopyAndMerge:
    def test_copy_is_independent(self):
        uf = UnionFind()
        uf.union(1, 2)
        clone = uf.copy()
        clone.union(2, 3)
        assert clone.connected(1, 3)
        assert not uf.connected(1, 3)

    def test_copy_preserves_connectivity(self):
        uf = UnionFind()
        uf.union("a", "b")
        uf.union("c", "d")
        clone = uf.copy()
        assert clone.connected("a", "b")
        assert not clone.connected("a", "c")
        assert clone.set_count == uf.set_count

    def test_merge_from(self):
        a = UnionFind()
        a.union(1, 2)
        b = UnionFind()
        b.union(2, 3)
        b.union(4, 5)
        a.merge_from(b)
        assert a.connected(1, 3)
        assert a.connected(4, 5)
        assert not a.connected(1, 4)
        # b unchanged: it never saw item 1
        assert 1 not in b

    def test_merge_from_empty(self):
        a = UnionFind([1, 2])
        a.merge_from(UnionFind())
        assert a.set_count == 2
