"""Unit tests for repro.graph.spanning_forest."""

from repro.graph.spanning_forest import connected_components, spanning_forest


class TestSpanningForest:
    def test_tree_input_keeps_all_edges(self):
        edges = [(0, 1), (1, 2), (2, 3)]
        kept, uf = spanning_forest(edges)
        assert kept == edges
        assert uf.set_count == 1

    def test_cycle_edges_removed(self):
        edges = [(0, 1), (1, 2), (2, 0)]
        kept, _ = spanning_forest(edges)
        assert len(kept) == 2

    def test_forest_size_invariant(self):
        # |kept| == |vertices| - |components| for any input graph.
        edges = [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (0, 2)]
        kept, uf = spanning_forest(edges)
        assert len(kept) == len(uf) - uf.set_count

    def test_connectivity_preserved(self):
        edges = [(0, 1), (1, 2), (2, 0), (2, 3), (3, 0)]
        kept, _ = spanning_forest(edges)
        _, uf_reduced = spanning_forest(kept)
        _, uf_full = spanning_forest(edges)
        for a in range(4):
            for b in range(4):
                assert uf_reduced.connected(a, b) == uf_full.connected(a, b)

    def test_empty(self):
        kept, uf = spanning_forest([])
        assert kept == []
        assert uf.set_count == 0

    def test_self_loop_never_kept(self):
        kept, _ = spanning_forest([(1, 1), (1, 2)])
        assert (1, 1) not in kept


class TestConnectedComponents:
    def test_isolated_nodes_get_own_component(self):
        labels = connected_components([0, 1, 2], [(0, 1)])
        assert labels[0] == labels[1]
        assert labels[2] != labels[0]

    def test_labels_dense(self):
        labels = connected_components(range(6), [(0, 1), (2, 3)])
        assert set(labels.values()) == {0, 1, 2, 3}

    def test_edges_can_introduce_nodes(self):
        labels = connected_components([], [(5, 6)])
        assert labels[5] == labels[6]

    def test_deterministic(self):
        a = connected_components(range(10), [(0, 5), (5, 9), (2, 3)])
        b = connected_components(range(10), [(0, 5), (5, 9), (2, 3)])
        assert a == b
