"""Property-based tests of cell-graph merging over random tournaments.

Generates random *partition-consistent* families of cell subgraphs —
every cell owned by exactly one partition, edges sourced at core cells,
cross-partition targets undetermined — and checks that the progressive
tournament produces exactly the same clustering as a one-shot union, for
any partition count, ownership, and edge structure.  This fuzzes the
merge path where a hand-written test once missed a tree-edge deletion
bug (see TestAbsorbResolving in tests/core/test_merging.py).
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.cell_graph import CellGraph, EdgeType
from repro.core.merging import progressive_merge
from repro.graph.spanning_forest import connected_components

SETTINGS = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def partitioned_subgraphs(draw):
    """A random family of partition-consistent cell subgraphs.

    Cells are ints ``0..n_cells-1``; each is randomly owned by one of
    ``k`` partitions and randomly core or non-core.  Each partition's
    subgraph contains its own cells (classified) plus edges from its
    core cells to random targets (typed when the target is owned,
    undetermined otherwise) — exactly the shape Phase II emits.
    """
    n_cells = draw(st.integers(2, 24))
    k = draw(st.integers(1, 5))
    owner = [draw(st.integers(0, k - 1)) for _ in range(n_cells)]
    is_core = [draw(st.booleans()) for _ in range(n_cells)]
    n_edges = draw(st.integers(0, 40))
    edge_pairs = [
        (
            draw(st.integers(0, n_cells - 1)),
            draw(st.integers(0, n_cells - 1)),
        )
        for _ in range(n_edges)
    ]

    graphs = [CellGraph() for _ in range(k)]
    for cell in range(n_cells):
        graph = graphs[owner[cell]]
        if is_core[cell]:
            graph.add_core_cell(cell)
        else:
            graph.add_noncore_cell(cell)
    for src, dst in edge_pairs:
        if not is_core[src] or src == dst:
            continue  # only core cells initiate reachability
        graph = graphs[owner[src]]
        if owner[dst] == owner[src]:
            edge_type = EdgeType.FULL if is_core[dst] else EdgeType.PARTIAL
        else:
            graph.add_undetermined_cell(dst)
            edge_type = EdgeType.UNDETERMINED
        graph.add_edge(src, dst, edge_type)
    return graphs




def canonical_partition(labels: dict) -> frozenset:
    """Partition induced by a labeling, invariant to label numbering."""
    groups: dict = {}
    for item, label in labels.items():
        groups.setdefault(label, set()).add(item)
    return frozenset(frozenset(g) for g in groups.values())


def one_shot_reference(graphs):
    """Union everything at once, then detect — no tournament."""
    total = CellGraph()
    for graph in graphs:
        total.absorb(graph)
    total.detect_edge_types()
    return total


class TestTournamentProperties:
    @SETTINGS
    @given(graphs=partitioned_subgraphs())
    def test_components_match_one_shot_union(self, graphs):
        reference = one_shot_reference([g.copy() for g in graphs])
        expected = connected_components(
            sorted(reference.core), reference.edges_of_type(EdgeType.FULL)
        )
        merged, _ = progressive_merge(graphs)
        got = connected_components(
            sorted(merged.core), merged.edges_of_type(EdgeType.FULL)
        )
        assert canonical_partition(got) == canonical_partition(expected)

    @SETTINGS
    @given(graphs=partitioned_subgraphs())
    def test_final_graph_is_global_and_valid(self, graphs):
        merged, _ = progressive_merge(graphs)
        assert merged.is_global()
        merged.validate()

    @SETTINGS
    @given(graphs=partitioned_subgraphs())
    def test_partial_edges_never_lost(self, graphs):
        reference = one_shot_reference([g.copy() for g in graphs])
        merged, _ = progressive_merge(graphs)
        assert merged.edges_of_type(EdgeType.PARTIAL) == reference.edges_of_type(
            EdgeType.PARTIAL
        )

    @SETTINGS
    @given(graphs=partitioned_subgraphs())
    def test_edge_counts_nonincreasing(self, graphs):
        _, stats = progressive_merge(graphs)
        rounds = stats.edges_per_round
        assert all(a >= b for a, b in zip(rounds, rounds[1:]))

    @SETTINGS
    @given(graphs=partitioned_subgraphs())
    def test_inputs_not_mutated(self, graphs):
        snapshots = [dict(g.edges) for g in graphs]
        progressive_merge(graphs)
        for graph, snapshot in zip(graphs, snapshots):
            assert graph.edges == snapshot

    @SETTINGS
    @given(graphs=partitioned_subgraphs(), order_seed=st.integers(0, 100))
    def test_order_insensitive(self, graphs, order_seed):
        import random

        shuffled = list(graphs)
        random.Random(order_seed).shuffle(shuffled)
        a, _ = progressive_merge(graphs)
        b, _ = progressive_merge(shuffled)
        comp_a = connected_components(sorted(a.core), a.edges_of_type(EdgeType.FULL))
        comp_b = connected_components(sorted(b.core), b.edges_of_type(EdgeType.FULL))
        assert canonical_partition(comp_a) == canonical_partition(comp_b)


class TestForestInvariants:
    @SETTINGS
    @given(graphs=partitioned_subgraphs())
    def test_full_edges_form_forest_after_merge(self, graphs):
        merged, _ = progressive_merge(graphs)
        full = merged.edges_of_type(EdgeType.FULL)
        # A spanning forest has |edges| = |vertices| - |components|.
        vertices = {v for edge in full for v in edge}
        labels = connected_components(sorted(vertices), full)
        n_components = len(set(labels.values()))
        assert len(full) == len(vertices) - n_components
