"""Unit tests for the Rand index / adjusted Rand index."""

import numpy as np
import pytest

from repro.metrics.rand_index import adjusted_rand_index, contingency_table, rand_index


class TestRandIndex:
    def test_identical_clusterings(self):
        labels = np.array([0, 0, 1, 1, 2])
        assert rand_index(labels, labels) == 1.0

    def test_renamed_clusters_identical(self):
        a = np.array([0, 0, 1, 1])
        b = np.array([7, 7, 3, 3])
        assert rand_index(a, b) == 1.0

    def test_complete_disagreement(self):
        a = np.array([0, 0, 0, 0])
        b = np.array([0, 1, 2, 3])
        # Agreeing pairs: none same-in-both, none diff-in-both... all 6
        # pairs are same-in-a, diff-in-b -> RI = 0.
        assert rand_index(a, b, noise_as_singletons=False) == 0.0

    def test_known_value(self):
        # Classic textbook example.
        a = np.array([0, 0, 0, 1, 1, 1])
        b = np.array([0, 0, 1, 1, 2, 2])
        # 15 pairs; 2 same-in-both + 8 different-in-both = 10 agreements.
        assert rand_index(a, b, noise_as_singletons=False) == pytest.approx(10 / 15)

    def test_symmetry(self):
        rng = np.random.default_rng(0)
        a = rng.integers(0, 4, 100)
        b = rng.integers(0, 3, 100)
        assert rand_index(a, b) == pytest.approx(rand_index(b, a))

    def test_bounds(self):
        rng = np.random.default_rng(1)
        for _ in range(10):
            a = rng.integers(-1, 3, 50)
            b = rng.integers(-1, 3, 50)
            assert 0.0 <= rand_index(a, b) <= 1.0

    def test_empty_and_singleton(self):
        assert rand_index(np.array([]), np.array([])) == 1.0
        assert rand_index(np.array([0]), np.array([5])) == 1.0

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            rand_index(np.array([0, 1]), np.array([0]))


class TestNoiseHandling:
    def test_noise_as_singletons_distinguishes(self):
        # Same clusters but different noise: singletons mode penalizes.
        a = np.array([0, 0, 1, 1, -1, -1])
        b = np.array([0, 0, 1, 1, -1, 0])
        assert rand_index(a, b) < 1.0

    def test_noise_as_shared_cluster(self):
        a = np.array([-1, -1, 0, 0])
        b = np.array([-1, -1, 0, 0])
        assert rand_index(a, b, noise_as_singletons=False) == 1.0

    def test_two_noise_points_not_a_pair(self):
        # In singleton mode two noise points count as "different cluster
        # in both" — an agreement.
        a = np.array([-1, -1])
        b = np.array([-1, -1])
        assert rand_index(a, b) == 1.0


class TestAdjustedRandIndex:
    def test_identical_is_one(self):
        labels = np.array([0, 1, 0, 1, 2])
        assert adjusted_rand_index(labels, labels) == 1.0

    def test_independent_labelings_near_zero(self):
        rng = np.random.default_rng(2)
        a = rng.integers(0, 5, 2000)
        b = rng.integers(0, 5, 2000)
        assert abs(adjusted_rand_index(a, b, noise_as_singletons=False)) < 0.05

    def test_ari_below_ri_for_chance(self):
        rng = np.random.default_rng(3)
        a = rng.integers(0, 3, 300)
        b = rng.integers(0, 3, 300)
        assert adjusted_rand_index(a, b, noise_as_singletons=False) < rand_index(
            a, b, noise_as_singletons=False
        )


class TestContingency:
    def test_table_sums(self):
        a = np.array([0, 0, 1, 1, 1])
        b = np.array([0, 1, 1, 1, 1])
        table = contingency_table(a, b)
        assert table.sum() == 5
        assert table.sum(axis=1).tolist() == [2, 3]
        assert table.sum(axis=0).tolist() == [1, 4]
