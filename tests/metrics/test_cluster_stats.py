"""Unit tests for repro.metrics.cluster_stats."""

import numpy as np
import pytest

from repro.metrics.cluster_stats import (
    ClusteringSummary,
    cluster_sizes,
    summarize_clustering,
)


class TestClusterSizes:
    def test_counts(self):
        labels = np.array([0, 0, 1, -1, 1, 1])
        assert cluster_sizes(labels) == {0: 2, 1: 3}

    def test_empty(self):
        assert cluster_sizes(np.array([])) == {}

    def test_all_noise(self):
        assert cluster_sizes(np.array([-1, -1])) == {}


class TestSummarize:
    def test_basic(self):
        labels = np.array([0, 0, 0, 1, 1, -1])
        summary = summarize_clustering(labels)
        assert summary.n_points == 6
        assert summary.n_clusters == 2
        assert summary.noise == 1
        assert summary.largest == 3
        assert summary.smallest == 2
        assert summary.median_size == 2.5

    def test_noise_fraction(self):
        summary = summarize_clustering(np.array([0, -1, -1, -1]))
        assert summary.noise_fraction == pytest.approx(0.75)

    def test_dominance_skewed(self):
        labels = np.array([0] * 90 + [1] * 10)
        assert summarize_clustering(labels).dominance == pytest.approx(0.9)

    def test_dominance_all_noise(self):
        assert summarize_clustering(np.array([-1, -1])).dominance == 0.0

    def test_empty(self):
        summary = summarize_clustering(np.array([]))
        assert summary.n_points == 0
        assert summary.noise_fraction == 0.0

    def test_describe_mentions_counts(self):
        text = summarize_clustering(np.array([0, 0, 1, -1])).describe()
        assert "2 clusters" in text and "4 points" in text


class TestStackedBars:
    def test_render(self):
        from repro.bench.reporting import render_stacked_bars

        out = render_stacked_bars(
            {"a": {"x": 0.5, "y": 0.5}, "b": {"x": 1.0}}, width=10
        )
        lines = out.splitlines()
        assert lines[0].startswith("legend:")
        assert "#####" in lines[1]
        assert "##########" in lines[2]

    def test_empty_rows(self):
        from repro.bench.reporting import render_stacked_bars

        out = render_stacked_bars({})
        assert out.startswith("legend:")
