"""Unit tests for the parallel-efficiency metrics."""

import pytest

from repro.metrics.parallel_metrics import (
    duplication_ratio,
    load_imbalance,
    normalize_breakdown,
)


class TestLoadImbalance:
    def test_perfect(self):
        assert load_imbalance([2.0, 2.0, 2.0]) == 1.0

    def test_ratio(self):
        assert load_imbalance([1.0, 5.0]) == 5.0

    def test_short_input(self):
        assert load_imbalance([]) == 1.0
        assert load_imbalance([3.0]) == 1.0

    def test_zero_guard(self):
        assert load_imbalance([0.0, 1.0]) < float("inf")


class TestDuplication:
    def test_no_duplication(self):
        assert duplication_ratio([50, 50], 100) == 1.0

    def test_overlap(self):
        assert duplication_ratio([70, 70], 100) == pytest.approx(1.4)

    def test_rejects_bad_n(self):
        with pytest.raises(ValueError):
            duplication_ratio([1], 0)


class TestBreakdown:
    def test_normalizes(self):
        out = normalize_breakdown({"a": 1.0, "b": 3.0})
        assert out == {"a": 0.25, "b": 0.75}

    def test_zero_total(self):
        out = normalize_breakdown({"a": 0.0})
        assert out == {"a": 0.0}
