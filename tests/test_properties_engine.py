"""Property-based equivalence suite for the execution engines.

Seeded random datasets crossed with an ``(eps, min_pts)`` grid and
several worker counts.  For every configuration, the process executor —
with and without injected faults — must produce exactly the same cluster
*partition* as the serial executor: identical noise points and a
bijection between cluster ids (labels may legitimately be permuted by a
different merge order, nothing more).

Everything is seeded: datasets come from ``numpy``'s ``default_rng`` and
the chaos source is a deterministic :class:`FaultInjector`, so a failure
here replays exactly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import PHASES, RPDBSCAN
from repro.engine import Engine, FaultInjector, FaultPolicy

NUM_PARTITIONS = 6

#: (dataset_seed, eps, min_pts) grid.  Radii/densities are chosen so the
#: grid spans all-noise, few-big-clusters, and many-small-clusters
#: regimes over the random datasets below.
GRID = [
    (0, 0.25, 5),
    (0, 0.45, 12),
    (1, 0.25, 5),
    (1, 0.45, 12),
    (2, 0.30, 8),
    (3, 0.30, 8),
]

WORKER_COUNTS = [2, 3]


def random_dataset(seed: int) -> np.ndarray:
    """A seeded random mixture: 1-3 blobs plus uniform background."""
    rng = np.random.default_rng(seed)
    parts = [
        rng.normal(
            rng.uniform(-4.0, 4.0, 2),
            rng.uniform(0.08, 0.35),
            (int(rng.integers(80, 180)), 2),
        )
        for _ in range(int(rng.integers(1, 4)))
    ]
    parts.append(rng.uniform(-5.0, 5.0, (int(rng.integers(20, 60)), 2)))
    return np.concatenate(parts)


def assert_same_partition(a: np.ndarray, b: np.ndarray) -> None:
    """Assert two labelings describe the same partition.

    Noise must agree exactly; cluster ids must map 1:1 (a bijection), so
    neither side splits or merges a cluster of the other.
    """
    a = np.asarray(a)
    b = np.asarray(b)
    assert a.shape == b.shape
    np.testing.assert_array_equal(a == -1, b == -1)
    forward: dict[int, int] = {}
    backward: dict[int, int] = {}
    for x, y in zip(a.tolist(), b.tolist()):
        if x == -1:
            continue
        assert forward.setdefault(x, y) == y, f"cluster {x} split across {forward[x]}, {y}"
        assert backward.setdefault(y, x) == x, f"clusters {backward[y]}, {x} merged into {y}"


class TestPartitionChecker:
    """Keep the oracle-helper honest before trusting it below."""

    def test_accepts_relabeling(self):
        assert_same_partition([0, 0, 1, -1, 2], [5, 5, 3, -1, 0])

    def test_rejects_noise_disagreement(self):
        with pytest.raises(AssertionError):
            assert_same_partition([0, 0, -1], [0, 0, 0])

    def test_rejects_split_cluster(self):
        with pytest.raises(AssertionError):
            assert_same_partition([0, 0, 0], [1, 1, 2])

    def test_rejects_merged_clusters(self):
        with pytest.raises(AssertionError):
            assert_same_partition([0, 0, 1], [2, 2, 2])


@pytest.fixture(scope="module")
def process_engines():
    """One persistent pool per worker count, shared across the grid."""
    engines: dict[int, Engine] = {}

    def get(workers: int) -> Engine:
        if workers not in engines:
            engines[workers] = Engine("process", num_workers=workers)
        return engines[workers]

    yield get
    for engine in engines.values():
        engine.close()


def _chaos_injector() -> FaultInjector:
    """Exception-only chaos whose decision table (which is shared by
    every fit, since phase names and task ids repeat) injects at least
    one attempt-0 fault and leaves every retry attempt clean."""
    parallel_phases = [p for p in PHASES if p not in ("I-1 partitioning", "III-1 merging")]
    for seed in range(100_000):
        inj = FaultInjector(exception_prob=0.1, seed=seed)
        hit = any(
            inj.decide(p, t, 0).exception
            for p in parallel_phases
            for t in range(NUM_PARTITIONS)
        )
        clean = all(
            not inj.decide(p, t, a).any
            for p in parallel_phases
            for t in range(NUM_PARTITIONS)
            for a in (1, 2, 3)
        )
        if hit and clean:
            return inj
    pytest.fail("no suitable chaos seed found")


@pytest.fixture(scope="module")
def chaos_engine():
    policy = FaultPolicy(
        max_retries=6, backoff_base_s=0.001, speculative=False, injector=_chaos_injector()
    )
    with Engine("process", num_workers=2, fault_policy=policy) as engine:
        yield engine


def _serial_labels(points: np.ndarray, eps: float, min_pts: int) -> np.ndarray:
    return (
        RPDBSCAN(eps=eps, min_pts=min_pts, num_partitions=NUM_PARTITIONS, seed=0)
        .fit(points)
        .labels
    )


class TestProcessSerialEquivalence:
    @pytest.mark.parametrize("dataset_seed,eps,min_pts", GRID)
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_process_matches_serial(
        self, process_engines, dataset_seed, eps, min_pts, workers
    ):
        points = random_dataset(dataset_seed)
        serial = _serial_labels(points, eps, min_pts)
        parallel = RPDBSCAN(
            eps=eps,
            min_pts=min_pts,
            num_partitions=NUM_PARTITIONS,
            seed=0,
            engine=process_engines(workers),
        ).fit(points)
        assert_same_partition(serial, parallel.labels)


class TestChaosEquivalence:
    @pytest.mark.parametrize("dataset_seed,eps,min_pts", GRID[:4])
    def test_faulty_process_matches_serial(
        self, chaos_engine, dataset_seed, eps, min_pts
    ):
        points = random_dataset(dataset_seed)
        serial = _serial_labels(points, eps, min_pts)
        before = chaos_engine.counters.fault_total()
        chaotic = RPDBSCAN(
            eps=eps,
            min_pts=min_pts,
            num_partitions=NUM_PARTITIONS,
            seed=0,
            engine=chaos_engine,
        ).fit(points)
        assert_same_partition(serial, chaotic.labels)
        # The injector's decision table is identical for every fit
        # (phase names and task ids repeat), and it was chosen to fire
        # at attempt 0 — so every fit must both inject and recover.
        assert chaos_engine.counters.fault_total() > before
