"""Property-based tests (hypothesis) on the core invariants.

Each property encodes one of the paper's structural guarantees listed in
DESIGN.md section 5, checked over randomized inputs.
"""

import math

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.cells import CellGeometry, h_for_rho
from repro.core.dictionary import CellDictionary
from repro.core.partitioning import pseudo_random_partition
from repro.core.region_query import RegionQueryEngine
from repro.graph.union_find import UnionFind
from repro.metrics.rand_index import adjusted_rand_index, rand_index

SETTINGS = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

points_2d = arrays(
    np.float64,
    st.tuples(st.integers(1, 120), st.just(2)),
    elements=st.floats(-5, 5, allow_nan=False, width=32),
)

labels_vec = arrays(np.int64, st.integers(0, 60), elements=st.integers(-1, 5))


class TestGeometryProperties:
    @SETTINGS
    @given(
        eps=st.floats(0.05, 10.0),
        dim=st.integers(1, 6),
        rho=st.floats(0.005, 1.0),
    )
    def test_subcell_diagonal_at_most_rho_eps(self, eps, dim, rho):
        geometry = CellGeometry(eps, dim, rho)
        assert geometry.sub_diagonal <= rho * eps * (1 + 1e-9)

    @SETTINGS
    @given(rho=st.floats(0.001, 1.0))
    def test_h_minimal(self, rho):
        # h is the smallest integer with 2^(h-1) >= 1/rho.
        h = h_for_rho(rho)
        assert 2 ** (h - 1) >= 1 / rho - 1e-9
        if h > 1:
            assert 2 ** (h - 2) < 1 / rho * (1 + 1e-9)

    @SETTINGS
    @given(points=points_2d, eps=st.floats(0.1, 3.0))
    def test_same_cell_implies_within_eps(self, points, eps):
        geometry = CellGeometry(eps, 2, 0.1)
        ids = geometry.cell_ids(points)
        order = np.lexsort(ids.T)
        sorted_ids = ids[order]
        sorted_pts = points[order]
        for i in range(1, len(order)):
            if np.all(sorted_ids[i] == sorted_ids[i - 1]):
                assert np.linalg.norm(sorted_pts[i] - sorted_pts[i - 1]) <= eps + 1e-9


class TestPartitioningProperties:
    @SETTINGS
    @given(
        points=points_2d,
        k=st.integers(1, 8),
        seed=st.integers(0, 1000),
    )
    def test_partition_covers_exactly(self, points, k, seed):
        geometry = CellGeometry(0.5, 2, 0.1)
        partitions = pseudo_random_partition(points, geometry, k, seed=seed)
        indices = np.concatenate([p.global_indices for p in partitions])
        assert sorted(indices.tolist()) == list(range(points.shape[0]))

    @SETTINGS
    @given(points=points_2d, k=st.integers(1, 8), seed=st.integers(0, 1000))
    def test_cells_stay_whole(self, points, k, seed):
        geometry = CellGeometry(0.5, 2, 0.1)
        partitions = pseudo_random_partition(points, geometry, k, seed=seed)
        seen: set = set()
        for p in partitions:
            for cell in p.cell_slices:
                assert cell not in seen
                seen.add(cell)


class TestDictionaryProperties:
    @SETTINGS
    @given(points=points_2d, rho=st.floats(0.01, 1.0))
    def test_density_conservation(self, points, rho):
        geometry = CellGeometry(0.7, 2, rho)
        dictionary = CellDictionary.from_points(points, geometry)
        assert dictionary.num_points == points.shape[0]

    @SETTINGS
    @given(points=points_2d)
    def test_size_model_counts(self, points):
        geometry = CellGeometry(0.7, 2, 0.05)
        dictionary = CellDictionary.from_points(points, geometry)
        model = dictionary.size_model()
        assert model.num_cells == dictionary.num_cells
        assert model.num_subcells == dictionary.num_subcells
        assert model.total_bits == model.density_bits + model.position_bits


class TestRegionQueryProperties:
    @SETTINGS
    @given(points=points_2d, eps=st.floats(0.2, 2.0), rho=st.floats(0.01, 0.5))
    def test_sandwich_bound(self, points, eps, rho):
        # Lemma 5.2: B(1-rho/2)eps <= approx <= B(1+rho/2)eps.
        geometry = CellGeometry(eps, 2, rho)
        dictionary = CellDictionary.from_points(points, geometry)
        engine = RegionQueryEngine(dictionary)
        query = points[0]
        approx, _ = engine.query_point(query)
        diff = points - query
        dist2 = np.einsum("ij,ij->i", diff, diff)
        slack = 1e-9
        inner = int(np.count_nonzero(dist2 <= ((1 - rho / 2) * eps) ** 2 * (1 - slack)))
        outer = int(np.count_nonzero(dist2 <= ((1 + rho / 2) * eps) ** 2 * (1 + slack)))
        assert inner <= approx <= outer


class TestUnionFindProperties:
    @SETTINGS
    @given(
        edges=st.lists(
            st.tuples(st.integers(0, 30), st.integers(0, 30)), max_size=100
        )
    )
    def test_equivalence_relation(self, edges):
        uf = UnionFind(range(31))
        for a, b in edges:
            uf.union(a, b)
        labels = uf.component_labels()
        # Reflexive + symmetric + transitive by construction: verify
        # against a brute-force closure.
        adjacency = {i: {i} for i in range(31)}
        changed = True
        reach = {i: {i} for i in range(31)}
        for a, b in edges:
            reach[a].add(b)
            reach[b].add(a)
        while changed:
            changed = False
            for i in range(31):
                expand = set()
                for j in reach[i]:
                    expand |= reach[j]
                if not expand <= reach[i]:
                    reach[i] |= expand
                    changed = True
        for i in range(31):
            for j in reach[i]:
                assert labels[i] == labels[j]

    @SETTINGS
    @given(
        edges=st.lists(
            st.tuples(st.integers(0, 20), st.integers(0, 20)), max_size=60
        )
    )
    def test_set_count_consistent(self, edges):
        uf = UnionFind(range(21))
        for a, b in edges:
            uf.union(a, b)
        assert uf.set_count == len({uf.find(i) for i in range(21)})


class TestRandIndexProperties:
    @SETTINGS
    @given(labels=labels_vec)
    def test_self_similarity_is_one(self, labels):
        assert rand_index(labels, labels) == 1.0
        assert adjusted_rand_index(labels, labels) == 1.0

    @SETTINGS
    @given(labels=labels_vec, permutation_seed=st.integers(0, 100))
    def test_invariant_under_relabeling(self, labels, permutation_seed):
        rng = np.random.default_rng(permutation_seed)
        mapping = rng.permutation(7)
        renamed = np.where(labels >= 0, mapping[np.clip(labels, 0, 6)], -1)
        assert rand_index(labels, renamed) == 1.0

    @SETTINGS
    @given(a=labels_vec)
    def test_symmetry(self, a):
        rng = np.random.default_rng(0)
        b = rng.integers(-1, 4, a.shape[0])
        assert rand_index(a, b) == pytest.approx(rand_index(b, a))
        assert 0.0 <= rand_index(a, b) <= 1.0


class TestEndToEndProperties:
    @SETTINGS
    @given(
        seed=st.integers(0, 50),
        k=st.integers(1, 6),
    )
    def test_partition_count_never_changes_clustering(self, seed, k):
        # Corollary 3.6: the number of random partitions is invisible in
        # the output clustering.
        from repro import RPDBSCAN

        rng = np.random.default_rng(seed)
        pts = np.concatenate(
            [rng.normal([0, 0], 0.2, (60, 2)), rng.normal([4, 4], 0.2, (60, 2))]
        )
        base = RPDBSCAN(0.5, 5, num_partitions=1).fit(pts)
        other = RPDBSCAN(0.5, 5, num_partitions=k, seed=seed).fit(pts)
        assert rand_index(base.labels, other.labels) == 1.0
