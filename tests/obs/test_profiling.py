"""Unit tests for per-task cProfile capture and merging."""

import pstats

from repro.obs.profiling import (
    dump_merged_profile,
    merge_profile_blobs,
    profile_call,
)


def _workload(n):
    return sum(i * i for i in range(n))


class TestProfileCall:
    def test_returns_result_and_blob(self):
        result, blob = profile_call(_workload, 1000)
        assert result == _workload(1000)
        assert isinstance(blob, bytes) and blob

    def test_blob_survives_exception(self):
        def boom():
            raise ValueError("x")

        try:
            profile_call(boom)
        except ValueError:
            pass
        else:  # pragma: no cover
            raise AssertionError("exception should propagate")


class TestMerge:
    def test_empty_is_none(self):
        assert merge_profile_blobs([]) is None

    def test_merge_accumulates_calls(self):
        blobs = [profile_call(_workload, 500)[1] for _ in range(3)]
        stats = merge_profile_blobs(blobs)
        assert isinstance(stats, pstats.Stats)
        workload_rows = [
            key for key in stats.stats if key[2] == "_workload"
        ]
        assert len(workload_rows) == 1
        cc, nc, tt, ct, callers = stats.stats[workload_rows[0]]
        assert nc == 3  # one call per merged blob

    def test_dump_round_trips_through_pstats(self, tmp_path):
        blobs = [profile_call(_workload, 200)[1]]
        path = tmp_path / "merged.pstats"
        assert dump_merged_profile(blobs, path) is not None
        reloaded = pstats.Stats(str(path))
        assert reloaded.stats

    def test_dump_empty_writes_nothing(self, tmp_path):
        path = tmp_path / "none.pstats"
        assert dump_merged_profile([], path) is None
        assert not path.exists()
