"""Unit tests for the span tracer and the trace well-formedness contract."""

import pytest

from repro.obs.spans import (
    EVENT_RESPAWN,
    EVENT_RETRY,
    NULL_TRACER,
    SPAN_KINDS,
    NullTracer,
    Span,
    Tracer,
    TraceValidationError,
    validate_trace,
)


class TestTracer:
    def test_context_manager_nests_and_closes(self):
        tracer = Tracer()
        with tracer.span("fit", "fit") as fit:
            with tracer.span("I-1", "phase", phase="I-1") as phase:
                pass
        assert fit.parent_id is None
        assert phase.parent_id == fit.span_id
        assert fit.closed and phase.closed
        assert fit.end_s >= phase.end_s >= phase.start_s >= fit.start_s
        validate_trace(tracer.spans)

    def test_exception_marks_span_error(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("fit", "fit"):
                raise RuntimeError("boom")
        assert tracer.spans[0].status == "error"
        assert tracer.spans[0].closed

    def test_start_span_without_push_keeps_parent(self):
        tracer = Tracer()
        with tracer.span("phase", "phase") as phase:
            task = tracer.start_span("task 0", "task", push=False, task_id=0)
            child = tracer.start_span("other", "setup", push=False)
            tracer.end_span(task)
            tracer.end_span(child)
        # Both were parented to the phase (task was never pushed).
        assert task.parent_id == phase.span_id
        assert child.parent_id == phase.span_id

    def test_end_span_annotations_and_status(self):
        tracer = Tracer()
        span = tracer.start_span("task 3#1", "attempt", task_id=3, attempt=1)
        tracer.end_span(span, status="timeout", timed_out=True)
        assert span.status == "timeout"
        assert span.annotations == {"timed_out": True}

    def test_record_span_accepts_worker_measured_window(self):
        tracer = Tracer()
        span = tracer.record_span(
            "task 0#0",
            "attempt",
            start_s=10.0,
            end_s=10.5,
            worker=1234,
            phase="II",
            task_id=0,
            attempt=0,
        )
        assert span.duration_s == pytest.approx(0.5)
        assert span.worker == 1234
        assert span.closed
        # Back-projected wall time is finite and plausible.
        assert span.wall_start_s > 0

    def test_event_is_instantaneous(self):
        tracer = Tracer()
        event = tracer.event(EVENT_RETRY, phase="II", task_id=1)
        assert event.kind == "event"
        assert event.duration_s == 0.0
        assert tracer.events(EVENT_RETRY) == [event]
        assert tracer.events(EVENT_RESPAWN) == []

    def test_find_filters_by_kind_and_name(self):
        tracer = Tracer()
        with tracer.span("fit", "fit"):
            with tracer.span("I-1", "phase"):
                pass
            with tracer.span("II", "phase"):
                pass
        assert len(tracer.find(kind="phase")) == 2
        assert [s.name for s in tracer.find(kind="phase", name="II")] == ["II"]

    def test_metrics_histogram_fed_on_attempt_close(self):
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        tracer = Tracer(metrics=registry)
        tracer.record_span(
            "task 0#0", "attempt", start_s=0.0, end_s=0.25, phase="II"
        )
        hist = registry.histogram("task_seconds.II")
        assert hist.total == 1
        assert hist.sum == pytest.approx(0.25)


class TestNullTracer:
    def test_disabled_and_records_nothing(self):
        tracer = NullTracer()
        assert not tracer.enabled
        with tracer.span("fit", "fit") as span:
            tracer.event("retry")
            tracer.end_span(tracer.start_span("x", "task"))
        assert tracer.spans == []
        assert span is NULL_TRACER.start_span("y", "phase")

    def test_shared_singleton(self):
        assert not NULL_TRACER.enabled
        assert NULL_TRACER.spans == []


def _span(span_id, kind="phase", parent_id=None, start=0.0, end=1.0, name="s"):
    return Span(
        span_id=span_id,
        name=name,
        kind=kind,
        start_s=start,
        wall_start_s=start,
        end_s=end,
        parent_id=parent_id,
    )


class TestValidateTrace:
    def test_accepts_well_formed(self):
        root = _span(0, kind="fit")
        child = _span(1, kind="phase", parent_id=0)
        validate_trace([root, child])

    def test_rejects_duplicate_ids(self):
        with pytest.raises(TraceValidationError, match="duplicate"):
            validate_trace([_span(0), _span(0)])

    def test_rejects_unknown_kind(self):
        with pytest.raises(TraceValidationError, match="unknown kind"):
            validate_trace([_span(0, kind="mystery")])

    def test_rejects_open_span(self):
        open_span = _span(0)
        open_span.end_s = None
        with pytest.raises(TraceValidationError, match="never closed"):
            validate_trace([open_span])

    def test_rejects_negative_duration(self):
        with pytest.raises(TraceValidationError, match="negative"):
            validate_trace([_span(0, start=2.0, end=1.0)])

    def test_rejects_missing_parent(self):
        with pytest.raises(TraceValidationError, match="missing parent"):
            validate_trace([_span(0, parent_id=99)])

    def test_rejects_container_under_leaf(self):
        leaf = _span(0, kind="attempt")
        bad = _span(1, kind="phase", parent_id=0)
        with pytest.raises(TraceValidationError, match="parented under"):
            validate_trace([leaf, bad])


class TestSpanSerialization:
    def test_round_trip_preserves_everything(self):
        span = Span(
            span_id=7,
            name="task 3#1",
            kind="attempt",
            start_s=1.5,
            wall_start_s=1e9,
            end_s=2.0,
            parent_id=3,
            worker=4321,
            phase="II cell graph",
            task_id=3,
            attempt=1,
            epoch=2,
            status="timeout",
            annotations={"compute_s": 0.4, "timed_out": True},
        )
        clone = Span.from_dict(span.to_dict())
        assert clone == span

    def test_minimal_record_defaults(self):
        clone = Span.from_dict(
            {"span_id": 0, "name": "fit", "kind": "fit", "start_s": 1.0}
        )
        assert clone.status == "ok"
        assert clone.annotations == {}
        assert clone.wall_start_s == 1.0
        assert not clone.closed

    def test_kind_vocabulary_is_stable(self):
        # The exporters and report switch on these exact strings.
        assert SPAN_KINDS == (
            "fit", "phase", "driver", "setup", "task", "attempt", "event"
        )
