"""Unit tests for the JSONL and Chrome trace exporters."""

import json

import pytest

from repro.obs.exporters import (
    TRACE_FORMATS,
    read_spans_jsonl,
    to_chrome_trace,
    write_chrome_trace,
    write_spans_jsonl,
    write_trace,
)
from repro.obs.spans import Span, Tracer, TraceValidationError


@pytest.fixture()
def trace():
    """A small but structurally complete trace: fit → phase → task →
    attempts on two workers, plus a fault event and a setup span."""
    tracer = Tracer()
    with tracer.span("fit", "fit"):
        setup = tracer.start_span("pool_startup", "setup", push=False)
        tracer.end_span(setup)
        with tracer.span("II cell graph", "phase", phase="II cell graph") as ph:
            task = tracer.start_span(
                "task 0", "task", push=False, phase="II cell graph", task_id=0
            )
            tracer.record_span(
                "task 0#0",
                "attempt",
                start_s=task.start_s,
                end_s=task.start_s + 0.1,
                parent_id=task.span_id,
                phase="II cell graph",
                task_id=0,
                attempt=0,
                worker=1111,
                status="error",
                annotations={"error": "ValueError()"},
            )
            tracer.event("retry", parent_id=ph.span_id, phase="II cell graph")
            tracer.record_span(
                "task 0#1",
                "attempt",
                start_s=task.start_s + 0.1,
                end_s=task.start_s + 0.2,
                parent_id=task.span_id,
                phase="II cell graph",
                task_id=0,
                attempt=1,
                worker=2222,
                annotations={"compute_s": 0.1, "winner": True},
            )
            task.worker = 2222
            tracer.end_span(task)
    return tracer.spans


class TestJsonl:
    def test_round_trip(self, trace, tmp_path):
        path = tmp_path / "trace.jsonl"
        write_spans_jsonl(trace, path)
        clone = read_spans_jsonl(path)
        assert clone == trace

    def test_one_record_per_line(self, trace, tmp_path):
        path = tmp_path / "trace.jsonl"
        write_spans_jsonl(trace, path)
        lines = path.read_text().strip().splitlines()
        assert len(lines) == len(trace)
        for line in lines:
            record = json.loads(line)
            assert {"span_id", "name", "kind", "start_s"} <= set(record)

    def test_refuses_malformed_trace(self, tmp_path):
        open_span = Span(
            span_id=0, name="x", kind="phase", start_s=0.0, wall_start_s=0.0
        )
        with pytest.raises(TraceValidationError):
            write_spans_jsonl([open_span], tmp_path / "bad.jsonl")
        assert not (tmp_path / "bad.jsonl").exists()


class TestChromeTrace:
    def test_structure(self, trace):
        doc = to_chrome_trace(trace)
        assert doc["displayTimeUnit"] == "ms"
        events = doc["traceEvents"]
        # Metadata names the process, the driver track, and each worker.
        meta = [e for e in events if e["ph"] == "M"]
        names = {e["args"]["name"] for e in meta}
        assert "rp-dbscan" in names and "driver" in names
        assert "worker 1111" in names and "worker 2222" in names
        # One X event per non-event span, one instant per fault event.
        assert len([e for e in events if e["ph"] == "X"]) == len(
            [s for s in trace if s.kind != "event"]
        )
        assert len([e for e in events if e["ph"] == "i"]) == 1
        # The whole document is valid JSON.
        json.dumps(doc)

    def test_timestamps_relative_and_nonnegative(self, trace):
        events = to_chrome_trace(trace)["traceEvents"]
        stamps = [e["ts"] for e in events if "ts" in e]
        assert min(stamps) == 0.0
        assert all(ts >= 0 for ts in stamps)
        durations = [e["dur"] for e in events if e["ph"] == "X"]
        assert all(d >= 0 for d in durations)

    def test_attempts_ride_worker_tracks(self, trace):
        events = to_chrome_trace(trace)["traceEvents"]
        attempt_tids = {
            e["tid"] for e in events if e["ph"] == "X" and e["cat"] == "attempt"
        }
        driver_tids = {
            e["tid"] for e in events if e["ph"] == "X" and e["cat"] == "fit"
        }
        assert driver_tids == {0}
        assert attempt_tids and 0 not in attempt_tids

    def test_write_file(self, trace, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(trace, path)
        doc = json.loads(path.read_text())
        assert doc["traceEvents"]


class TestWriteTrace:
    def test_dispatch(self, trace, tmp_path):
        write_trace(trace, tmp_path / "a.jsonl", fmt="jsonl")
        assert read_spans_jsonl(tmp_path / "a.jsonl") == trace
        write_trace(trace, tmp_path / "a.json", fmt="chrome")
        assert json.loads((tmp_path / "a.json").read_text())["traceEvents"]

    def test_unknown_format(self, trace, tmp_path):
        with pytest.raises(ValueError, match="unknown trace format"):
            write_trace(trace, tmp_path / "a.bin", fmt="protobuf")

    def test_formats_constant_matches_dispatch(self):
        assert TRACE_FORMATS == ("jsonl", "chrome")
