"""Unit tests for the metrics registry and the Counters compatibility shim."""

import math

import pytest

from repro.engine.counters import Counters, TaskStats
from repro.obs.metrics import (
    DEFAULT_SECONDS_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestCounter:
    def test_increments(self):
        c = Counter("n")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_rejects_decrease(self):
        with pytest.raises(ValueError):
            Counter("n").inc(-1)


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge("depth")
        g.set(10)
        g.inc(5)
        g.dec(2)
        assert g.value == 13.0


class TestHistogram:
    def test_bucket_assignment(self):
        h = Histogram("t", boundaries=(1.0, 2.0, 4.0))
        for v in (0.5, 1.5, 3.0, 100.0):
            h.observe(v)
        # counts: <=1, <=2, <=4, +Inf
        assert h.counts == [1, 1, 1, 1]
        assert h.total == 4
        assert h.sum == pytest.approx(105.0)
        assert h.min == 0.5 and h.max == 100.0
        assert h.mean == pytest.approx(105.0 / 4)

    def test_boundary_value_lands_in_finite_bucket(self):
        h = Histogram("t", boundaries=(1.0,))
        h.observe(1.0)
        assert h.counts == [1, 0]

    def test_rejects_bad_boundaries(self):
        with pytest.raises(ValueError):
            Histogram("t", boundaries=())
        with pytest.raises(ValueError):
            Histogram("t", boundaries=(1.0, 1.0))

    def test_quantile_is_bucket_resolution(self):
        h = Histogram("t", boundaries=(1.0, 2.0, 4.0))
        for v in (0.5, 0.6, 1.5, 3.0):
            h.observe(v)
        assert h.quantile(0.0) == 0.0 or h.quantile(0.0) <= 1.0
        assert h.quantile(0.5) == 1.0
        assert h.quantile(1.0) == 4.0
        assert Histogram("e", boundaries=(1.0,)).quantile(0.5) == 0.0
        with pytest.raises(ValueError):
            h.quantile(1.5)

    def test_to_dict_empty_min_max_none(self):
        d = Histogram("t", boundaries=(1.0,)).to_dict()
        assert d["min"] is None and d["max"] is None
        assert d["counts"] == [0, 0]

    def test_default_buckets_are_increasing(self):
        assert list(DEFAULT_SECONDS_BUCKETS) == sorted(DEFAULT_SECONDS_BUCKETS)


class TestMetricsRegistry:
    def test_get_or_create_is_stable(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.histogram("h") is reg.histogram("h")

    def test_type_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("a")
        with pytest.raises(TypeError):
            reg.gauge("a")

    def test_value_and_snapshot(self):
        reg = MetricsRegistry()
        reg.counter("a").inc(2)
        reg.gauge("g").set(-1)
        reg.histogram("h", boundaries=(1.0,)).observe(0.5)
        assert reg.value("a") == 2.0
        assert reg.value("g") == -1.0
        with pytest.raises(TypeError):
            reg.value("h")
        snap = reg.snapshot()
        assert snap["a"] == 2.0
        assert snap["h"]["total"] == 1
        assert reg.names() == ["a", "g", "h"]
        assert "a" in reg and "zzz" not in reg
        assert dict(iter(reg))["a"].value == 2.0


class TestCountersShim:
    """The acceptance criterion: legacy dict views and the mirrored
    registry report identical values."""

    def _populated(self):
        counters = Counters()
        counters.add_phase_time("II cell graph", 1.5)
        counters.add_phase_time("II cell graph", 0.5)
        counters.add_phase_time("III-2 labeling", 0.25)
        counters.add_setup_time("pool_startup", 0.1)
        counters.add_fault_event("retries", 3)
        counters.record_task("II cell graph", TaskStats(0, 0.7, items=100))
        counters.record_task("II cell graph", TaskStats(1, 0.3, items=50))
        return counters

    def test_registry_mirrors_dicts_exactly(self):
        counters = self._populated()
        reg = counters.registry
        for phase, seconds in counters.phase_seconds.items():
            assert reg.value(f"phase_seconds.{phase}") == pytest.approx(seconds)
        for cat, seconds in counters.setup_seconds.items():
            assert reg.value(f"setup_seconds.{cat}") == pytest.approx(seconds)
        for kind, count in counters.fault_events.items():
            assert reg.value(f"fault_events.{kind}") == count
        for phase, tasks in counters.phase_tasks.items():
            assert reg.value(f"items.{phase}") == sum(t.items for t in tasks)
            hist = reg.histogram(f"task_seconds.{phase}")
            assert hist.total == len(tasks)
            assert hist.sum == pytest.approx(
                sum(t.wall_time_s for t in tasks)
            )

    def test_since_delta_registry_matches_its_dicts(self):
        counters = self._populated()
        mark = counters.mark()
        counters.add_phase_time("II cell graph", 1.0)
        counters.record_task("II cell graph", TaskStats(2, 0.9, items=10))
        counters.add_fault_event("respawns")
        delta = counters.since(mark)
        assert delta.phase_seconds == {"II cell graph": pytest.approx(1.0)}
        assert delta.registry.value("phase_seconds.II cell graph") == (
            pytest.approx(1.0)
        )
        assert delta.registry.value("items.II cell graph") == 10
        assert delta.registry.value("fault_events.respawns") == 1
        assert delta.registry.histogram("task_seconds.II cell graph").total == 1

    def test_legacy_views_unchanged(self):
        counters = self._populated()
        assert counters.total_seconds() == pytest.approx(2.25)
        assert counters.setup_total() == pytest.approx(0.1)
        assert counters.grand_total_seconds() == pytest.approx(2.35)
        assert counters.fault_total() == 3
        assert counters.items_processed("II cell graph") == 150
        assert counters.load_imbalance("II cell graph") == pytest.approx(
            0.7 / 0.3
        )
        breakdown = counters.breakdown()
        assert math.isclose(sum(breakdown.values()), 1.0)
