"""Unit tests for the human-readable run report."""

from repro.obs.report import (
    fault_ledger_rows,
    phase_task_durations,
    render_run_report,
    worker_busy_seconds,
)
from repro.obs.spans import Span


def _span(span_id, kind, name, start, end, *, parent_id=None, **extra):
    annotations = extra.pop("annotations", {})
    return Span(
        span_id=span_id,
        name=name,
        kind=kind,
        start_s=start,
        wall_start_s=extra.pop("wall_start_s", start),
        end_s=end,
        parent_id=parent_id,
        annotations=annotations,
        **extra,
    )


def _sample_trace():
    """fit with one driver phase and one mapped phase (2 tasks, one with
    a losing first attempt, one straggler), plus a respawn event."""
    spans = [
        _span(0, "fit", "fit", 0.0, 10.0),
        _span(1, "driver", "I-1 partitioning", 0.0, 1.0, parent_id=0),
        _span(2, "phase", "II cell graph", 1.0, 9.0, parent_id=0,
              phase="II cell graph"),
        _span(3, "task", "task 0", 1.0, 3.0, parent_id=2,
              phase="II cell graph", task_id=0, worker=11),
        _span(4, "attempt", "task 0#0", 1.0, 2.0, parent_id=3,
              phase="II cell graph", task_id=0, attempt=0, worker=11,
              status="lost", annotations={"reason": "worker died"}),
        _span(5, "attempt", "task 0#1", 2.0, 3.0, parent_id=3,
              phase="II cell graph", task_id=0, attempt=1, worker=11,
              annotations={"compute_s": 1.0, "winner": True}),
        _span(6, "task", "task 1", 1.0, 9.0, parent_id=2,
              phase="II cell graph", task_id=1, worker=22),
        _span(7, "attempt", "task 1#0", 1.0, 9.0, parent_id=6,
              phase="II cell graph", task_id=1, attempt=0, worker=22,
              annotations={"compute_s": 8.0, "winner": True}),
        _span(8, "event", "respawn", 2.0, 2.0, parent_id=2,
              phase="II cell graph", wall_start_s=1700000000.0,
              annotations={"reason": "a worker process died"}),
        _span(9, "setup", "pool_startup", 0.0, 0.5, parent_id=0),
    ]
    return spans


class TestHelpers:
    def test_phase_task_durations_picks_winners(self):
        durations = phase_task_durations(_sample_trace())
        # Lost attempt excluded; compute_s preferred over span width.
        assert sorted(durations["II cell graph"]) == [1.0, 8.0]

    def test_worker_busy_counts_all_attempts(self):
        busy = worker_busy_seconds(_sample_trace())
        # Worker 11 ran a lost attempt (1s) plus the winner (1s).
        assert busy[11] == 2.0
        assert busy[22] == 8.0

    def test_fault_ledger_rows_have_wall_clock(self):
        rows = fault_ledger_rows(_sample_trace())
        assert len(rows) == 1
        stamp, name, phase, task, reason = rows[0]
        assert name == "respawn"
        assert phase == "II cell graph"
        assert reason == "a worker process died"
        # 1700000000.0 epoch = 2023-11-14 22:13:20 UTC.
        assert stamp == "22:13:20.000"


class TestRenderRunReport:
    def test_sections_present(self):
        report = render_run_report(_sample_trace(), title="unit run")
        assert report.startswith("unit run\n========")
        assert "phase breakdown" in report
        assert "per-worker utilization" in report
        assert "critical path" in report
        assert "fault ledger" in report
        assert "engine setup" in report
        assert "pool_startup" in report

    def test_straggler_flagged(self):
        # Task 1 (8s) is >= 2x the phase median of (1, 8) = 4.5s... the
        # median of two values; 8 >= 2*4.5 is false, so craft a clearer
        # case: three tasks with one outlier.
        spans = [
            _span(0, "phase", "II", 0.0, 10.0, phase="II"),
            _span(1, "attempt", "a", 0.0, 1.0, parent_id=0, phase="II",
                  task_id=0, worker=1, annotations={"winner": True}),
            _span(2, "attempt", "b", 0.0, 1.0, parent_id=0, phase="II",
                  task_id=1, worker=2, annotations={"winner": True}),
            _span(3, "attempt", "c", 0.0, 9.0, parent_id=0, phase="II",
                  task_id=2, worker=3, annotations={"winner": True}),
        ]
        report = render_run_report(spans)
        assert "stragglers" in report
        assert "9.0x median" in report

    def test_empty_trace_renders_title_only(self):
        report = render_run_report([], title="empty")
        assert report.startswith("empty")

    def test_driver_rows_carry_no_task_stats(self):
        report = render_run_report(_sample_trace())
        breakdown = next(
            s for s in report.split("\n\n") if "phase breakdown" in s
        )
        driver_row = next(
            line for line in breakdown.splitlines()
            if line.startswith("I-1 partitioning")
        )
        assert "N/A" in driver_row
