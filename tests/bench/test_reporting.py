"""Unit tests for bench reporting."""

import math

import numpy as np

from repro.bench.reporting import format_cell, format_table, render_ascii_scatter


class TestFormatCell:
    def test_nan_is_na(self):
        assert format_cell(math.nan) == "N/A"

    def test_none_is_na(self):
        assert format_cell(None) == "N/A"

    def test_int_passthrough(self):
        assert format_cell(42) == "42"

    def test_small_float(self):
        assert format_cell(0.1234) == "0.123"

    def test_large_float_compact(self):
        assert format_cell(123456.0) == "1.23e+05"

    def test_zero(self):
        assert format_cell(0.0) == "0"


class TestFormatTable:
    def test_alignment_and_title(self):
        out = format_table(
            ["name", "value"], [["a", 1], ["bb", 22]], title="My Table"
        )
        lines = out.splitlines()
        assert lines[0] == "My Table"
        assert "name" in lines[1] and "value" in lines[1]
        assert len(lines) == 5

    def test_empty_rows(self):
        out = format_table(["h1", "h2"], [])
        assert "h1" in out


class TestAsciiScatter:
    def test_renders_clusters_and_noise(self):
        pts = np.array([[0.0, 0.0], [1.0, 1.0], [0.5, 0.5]])
        labels = np.array([0, 1, -1])
        out = render_ascii_scatter(pts, labels, width=10, height=5)
        assert "0" in out and "1" in out and "." in out

    def test_empty(self):
        assert render_ascii_scatter(np.empty((0, 2)), np.empty(0)) == "(empty)"

    def test_degenerate_extent(self):
        pts = np.zeros((5, 2))
        out = render_ascii_scatter(pts, np.zeros(5), width=8, height=4)
        assert "0" in out
