"""Unit tests for the benchmark harness."""

import time

import numpy as np
import pytest

from repro.bench.harness import (
    AlgorithmTimeout,
    call_with_timeout,
    find_eps_for_clusters,
    run_comparison,
)


class SlowAlgorithm:
    def fit(self, points):
        time.sleep(5.0)


class TestTimeout:
    def test_fast_call_passes(self):
        assert call_with_timeout(lambda: 42, 5.0) == 42

    def test_none_disables(self):
        assert call_with_timeout(lambda: "ok", None) == "ok"

    def test_slow_call_times_out(self):
        with pytest.raises(AlgorithmTimeout):
            call_with_timeout(lambda: time.sleep(3), 0.1)

    def test_timer_cleared_after_use(self):
        call_with_timeout(lambda: None, 1.0)
        time.sleep(0.01)  # would fire if the timer leaked


class TestRunComparison:
    def test_rows_collected(self, two_blobs):
        from repro import RPDBSCAN
        from repro.baselines import ExactDBSCAN

        rows = run_comparison(
            {
                "RP": lambda: RPDBSCAN(0.3, 10, 2),
                "Exact": lambda: ExactDBSCAN(0.3, 10),
            },
            two_blobs,
            params={"eps": 0.3},
        )
        assert [r.algorithm for r in rows] == ["RP", "Exact"]
        for row in rows:
            assert not row.timed_out
            assert row.n_clusters == 2
            assert row.params["eps"] == 0.3

    def test_timeout_yields_na_row(self, two_blobs):
        rows = run_comparison(
            {"Slow": SlowAlgorithm}, two_blobs, timeout_s=0.1
        )
        assert rows[0].timed_out

    def test_repeats_average(self, two_blobs):
        from repro.baselines import ExactDBSCAN

        rows = run_comparison(
            {"Exact": lambda: ExactDBSCAN(0.3, 10)}, two_blobs, repeats=2
        )
        assert rows[0].elapsed_s > 0


class TestFindEps:
    def test_finds_separating_eps(self):
        from repro.baselines.rho_dbscan import RhoDBSCAN
        from repro.data.generators import blobs

        pts = blobs(3000, centers=8, std=0.2, spread=30.0, seed=0)
        eps = find_eps_for_clusters(pts, min_pts=10, target_clusters=8)
        result = RhoDBSCAN(eps, 10, rho=0.05).fit(pts)
        assert 4 <= result.n_clusters <= 14
