"""Correctness oracle: RP-DBSCAN against exact DBSCAN.

**Exact mode (rho = 0).**  Passing ``rho=0`` to :class:`RPDBSCAN`
selects :data:`~repro.core.EXACT_RHO` (``2**-16``), the finest sub-cell
split the dictionary's uint16 coordinate layout admits.  At that
granularity the fully-contained sub-cell test can misjudge a
neighborhood only for points within ``eps * 2**-16`` of the eps sphere —
far below the spacing of any dataset in general position — so RP-DBSCAN
must reproduce exact DBSCAN up to DBSCAN's *own* well-known ambiguity:

* core points and their partition into clusters are unique and must
  match exactly (Rand index 1.0 restricted to core points, cluster ids
  in bijection);
* a border point may be claimed by any cluster owning a core point
  within eps of it — classic DBSCAN resolves the tie by visit order,
  RP-DBSCAN by cell structure, and both answers are valid;
* noise (no core point within eps) must match exactly.

:func:`_oracle_check` pins exactly that contract; on datasets without
contested border points it degenerates to whole-labeling Rand index 1.0,
which the individual tests additionally assert where it holds.

The contract excludes datasets with inter-point distances *exactly*
equal to eps (e.g. a unit lattice queried with ``eps=1.0``): such pairs
lie on the decision sphere itself, where no finite sub-cell refinement
can decide containment — choose eps off the lattice spectrum instead.

**Approximate mode (rho > 0).**  The paper's Lemma 2 bounds the error:
any point RP-DBSCAN treats differently from exact DBSCAN lies within
``eps*(1+rho)`` of the deciding core point, so only the eps-boundary of
clusters can flip.  Table 4 reports Rand indices >= 0.99 for
``rho <= 0.01``; the suite tolerates (and documents) exactly that bound.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import ExactDBSCAN
from repro.core import EXACT_RHO, RPDBSCAN
from repro.data.generators import moons
from repro.metrics import rand_index


def _oracle_check(points: np.ndarray, eps: float, min_pts: int) -> float:
    """Assert the exact-mode contract; return the whole-labeling RI."""
    points = np.asarray(points, dtype=np.float64)
    exact = ExactDBSCAN(eps, min_pts).fit(points)
    approx = RPDBSCAN(eps, min_pts, num_partitions=4, rho=0, seed=0).fit(points)

    core = np.asarray(approx.core_mask, dtype=bool)
    np.testing.assert_array_equal(core, np.asarray(exact.core_mask, dtype=bool))

    # The core partition is unique: exact agreement, ids in bijection.
    assert rand_index(exact.labels[core], approx.labels[core]) == 1.0

    # Border points: claimed by some cluster owning a reaching core
    # point; noise exactly when no core point is within eps.
    d2 = ((points[:, None, :] - points[None, :, :]) ** 2).sum(axis=-1)
    within = d2 <= eps * eps
    for i in np.flatnonzero(~core):
        owners = {int(label) for label in approx.labels[within[i] & core]}
        if owners:
            assert int(approx.labels[i]) in owners
            assert int(exact.labels[i]) != -1
        else:
            assert int(approx.labels[i]) == -1
            assert int(exact.labels[i]) == -1

    return rand_index(exact.labels, approx.labels)


class TestExactModeOracle:
    def test_rho_zero_selects_exact_mode(self):
        model = RPDBSCAN(eps=0.3, min_pts=10, rho=0)
        assert model.rho == EXACT_RHO

    def test_two_blobs(self, two_blobs):
        assert _oracle_check(two_blobs, eps=0.3, min_pts=10) == 1.0

    def test_moons(self):
        assert _oracle_check(moons(500, noise=0.05, seed=9), eps=0.15, min_pts=8) == 1.0

    def test_blobs_with_noise(self, blobs_with_noise):
        assert _oracle_check(blobs_with_noise, eps=0.25, min_pts=12) == 1.0

    def test_three_d_blobs(self, three_d_blobs):
        assert _oracle_check(three_d_blobs, eps=0.5, min_pts=10) == 1.0

    def test_uniform_square(self, uniform_square):
        # Near the critical density, contested border points exist (a
        # border point between two clusters' cores); the structural
        # contract still holds and the whole-labeling RI stays ~1.
        assert _oracle_check(uniform_square, eps=0.06, min_pts=6) >= 0.995


class TestDegenerateDatasets:
    """Pathological geometry where approximate region tests usually slip."""

    def test_exact_duplicates(self):
        # 10 distinct sites, each repeated 30 times: every neighborhood
        # count is a multiple of 30, stacked on a single sub-cell.
        rng = np.random.default_rng(0)
        sites = rng.uniform(0.0, 5.0, (10, 2))
        points = np.repeat(sites, 30, axis=0)
        assert _oracle_check(points, eps=0.8, min_pts=15) == 1.0

    def test_collinear_points(self):
        line = np.stack([np.linspace(0.0, 10.0, 300), np.zeros(300)], axis=1)
        assert _oracle_check(line, eps=0.1, min_pts=4) == 1.0

    def test_single_point(self):
        assert _oracle_check(np.array([[1.0, 2.0]]), eps=0.5, min_pts=1) == 1.0

    def test_two_far_points(self):
        assert _oracle_check(np.array([[0.0, 0.0], [100.0, 100.0]]), eps=0.5, min_pts=2) == 1.0

    def test_tight_grid(self):
        # A regular lattice.  eps=1.2 sits strictly between the lattice
        # distances 1 and sqrt(2), off the decision sphere (see module
        # docstring: eps exactly *on* a lattice distance is undecidable
        # for any finite sub-cell split, and excluded from the contract).
        xs, ys = np.meshgrid(np.arange(15, dtype=float), np.arange(15, dtype=float))
        points = np.stack([xs.ravel(), ys.ravel()], axis=1)
        assert _oracle_check(points, eps=1.2, min_pts=5) == 1.0


class TestApproximateModeBound:
    """rho > 0 is allowed to flip eps-boundary points only (Lemma 2)."""

    @pytest.mark.parametrize("rho", [0.01, 0.001])
    def test_rand_index_within_table4_bound(self, two_blobs, rho):
        exact = ExactDBSCAN(0.3, 10).fit(two_blobs)
        approx = RPDBSCAN(0.3, 10, num_partitions=4, rho=rho, seed=0).fit(two_blobs)
        assert rand_index(exact.labels, approx.labels) >= 0.99

    def test_smaller_rho_is_no_less_accurate(self, blobs_with_noise):
        exact = ExactDBSCAN(0.25, 12).fit(blobs_with_noise)
        scores = [
            rand_index(
                exact.labels,
                RPDBSCAN(0.25, 12, num_partitions=4, rho=rho, seed=0)
                .fit(blobs_with_noise)
                .labels,
            )
            for rho in (0.1, 0.01, 0)
        ]
        assert scores == sorted(scores)
        assert scores[-1] == 1.0
