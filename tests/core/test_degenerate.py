"""Degenerate-input tests for the full RP-DBSCAN pipeline.

Coincident points, grid-aligned coordinates, one-dimensional data, the
coarsest approximation (rho = 1: sub-cell == cell), and single-cluster /
single-point inputs — the corners where floor/boundary arithmetic and
empty structures bite.
"""

import numpy as np
import pytest

from repro import RPDBSCAN
from repro.baselines import ExactDBSCAN
from repro.metrics import rand_index


class TestCoincidentPoints:
    def test_all_identical(self):
        pts = np.tile([1.0, 2.0], (100, 1))
        result = RPDBSCAN(eps=0.5, min_pts=10, num_partitions=4).fit(pts)
        assert result.n_clusters == 1
        assert result.noise_count == 0
        assert bool(result.core_mask.all())

    def test_two_identical_groups(self):
        pts = np.concatenate(
            [np.tile([0.0, 0.0], (50, 1)), np.tile([10.0, 10.0], (50, 1))]
        )
        result = RPDBSCAN(eps=0.5, min_pts=10).fit(pts)
        assert result.n_clusters == 2

    def test_duplicates_below_min_pts(self):
        pts = np.tile([0.0, 0.0], (5, 1))
        result = RPDBSCAN(eps=0.5, min_pts=10).fit(pts)
        assert result.n_clusters == 0
        assert result.noise_count == 5


class TestGridAlignedCoordinates:
    def test_integer_lattice(self):
        # Points exactly on cell-boundary multiples stress the floor
        # arithmetic.  eps sits strictly above the lattice spacing so
        # neighbors are robustly inside the ball (see the gray-zone test
        # below for the eps == spacing boundary).
        xs, ys = np.meshgrid(np.arange(10, dtype=float), np.arange(10, dtype=float))
        pts = np.stack([xs.ravel(), ys.ravel()], axis=1)
        exact = ExactDBSCAN(1.05, 4).fit(pts)
        rp = RPDBSCAN(1.05, 4, num_partitions=4, rho=0.01).fit(pts)
        assert rp.n_clusters == exact.n_clusters == 1
        assert rand_index(exact.labels, rp.labels) >= 0.999

    def test_exact_boundary_is_a_gray_zone(self):
        # Neighbors at distance exactly eps live inside Lemma 5.2's
        # (1 +- rho/2) eps blur: the approximate query may count or drop
        # them.  The paper calls this out ("the minor difference could
        # happen mostly if the value of eps was a poor choice") — this
        # test documents the contract rather than demanding exactness.
        xs, ys = np.meshgrid(np.arange(10, dtype=float), np.arange(10, dtype=float))
        pts = np.stack([xs.ravel(), ys.ravel()], axis=1)
        rp = RPDBSCAN(1.0, 4, num_partitions=4, rho=0.01).fit(pts)
        # Either everything clusters (neighbors counted) or everything is
        # noise (neighbors dropped); no in-between corruption.
        assert rp.n_clusters in (0, 1)

    def test_negative_coordinates(self):
        rng = np.random.default_rng(0)
        pts = rng.normal([-50.0, -50.0], 0.1, (200, 2))
        result = RPDBSCAN(0.3, 10).fit(pts)
        assert result.n_clusters == 1


class TestOneDimensional:
    def test_two_intervals(self):
        rng = np.random.default_rng(1)
        pts = np.concatenate(
            [rng.uniform(0.0, 1.0, (200, 1)), rng.uniform(5.0, 6.0, (200, 1))]
        )
        exact = ExactDBSCAN(0.1, 5).fit(pts)
        rp = RPDBSCAN(0.1, 5, num_partitions=4).fit(pts)
        assert rp.n_clusters == exact.n_clusters == 2
        assert rand_index(exact.labels, rp.labels) >= 0.999


class TestCoarsestApproximation:
    def test_rho_one_runs_and_respects_sandwich(self, two_blobs):
        # rho = 1: h = 1, a sub-cell IS its cell; the blur is +-eps/2.
        result = RPDBSCAN(0.3, 10, rho=1.0).fit(two_blobs)
        # Two far-apart blobs survive even the coarsest approximation.
        assert result.n_clusters == 2
        assert result.noise_count == 0

    def test_rho_one_dictionary_is_single_level(self, two_blobs):
        from repro.core.cells import CellGeometry
        from repro.core.dictionary import CellDictionary

        geometry = CellGeometry(0.3, 2, rho=1.0)
        assert geometry.h == 1
        assert geometry.subcells_per_cell == 1
        dictionary = CellDictionary.from_points(two_blobs, geometry)
        assert dictionary.num_subcells == dictionary.num_cells


class TestTinyInputs:
    def test_single_point(self):
        result = RPDBSCAN(1.0, 1).fit(np.array([[3.0, 4.0]]))
        assert result.n_clusters == 1
        assert result.labels.tolist() == [0]

    def test_two_far_points(self):
        result = RPDBSCAN(1.0, 1).fit(np.array([[0.0, 0.0], [100.0, 100.0]]))
        assert result.n_clusters == 2

    def test_more_partitions_than_points(self):
        pts = np.array([[0.0, 0.0], [0.1, 0.0], [0.0, 0.1]])
        result = RPDBSCAN(1.0, 1, num_partitions=16).fit(pts)
        assert result.n_clusters == 1

    def test_huge_coordinates(self):
        rng = np.random.default_rng(2)
        pts = rng.normal(1e7, 0.1, (100, 2))
        result = RPDBSCAN(0.5, 5).fit(pts)
        assert result.n_clusters == 1
        assert result.noise_count == 0
