"""Unit tests for repro.core.cell_graph (Def 5.8, Sec 6.1)."""

import pytest

from repro.core.cell_graph import CellGraph, EdgeType


def make_graph():
    g = CellGraph()
    g.add_core_cell((0, 0))
    g.add_core_cell((0, 1))
    g.add_noncore_cell((1, 0))
    g.add_undetermined_cell((2, 0))
    g.add_edge((0, 0), (0, 1), EdgeType.FULL)
    g.add_edge((0, 0), (1, 0), EdgeType.PARTIAL)
    g.add_edge((0, 1), (2, 0), EdgeType.UNDETERMINED)
    return g


class TestVertexClasses:
    def test_vertex_status(self):
        g = make_graph()
        assert g.vertex_status((0, 0)) == "core"
        assert g.vertex_status((1, 0)) == "noncore"
        assert g.vertex_status((2, 0)) == "undetermined"
        assert g.vertex_status((9, 9)) == "absent"

    def test_promotion_from_undetermined(self):
        g = CellGraph()
        g.add_undetermined_cell((0, 0))
        g.add_core_cell((0, 0))
        assert g.vertex_status((0, 0)) == "core"
        assert not g.undetermined

    def test_core_and_noncore_conflict(self):
        g = CellGraph()
        g.add_core_cell((0, 0))
        with pytest.raises(ValueError):
            g.add_noncore_cell((0, 0))

    def test_undetermined_does_not_demote(self):
        g = CellGraph()
        g.add_core_cell((0, 0))
        g.add_undetermined_cell((0, 0))
        assert g.vertex_status((0, 0)) == "core"

    def test_counts(self):
        g = make_graph()
        assert g.num_vertices == 4
        assert g.num_edges == 3


class TestEdges:
    def test_determined_edges_not_downgraded(self):
        g = make_graph()
        g.add_edge((0, 0), (0, 1), EdgeType.UNDETERMINED)
        assert g.edges[((0, 0), (0, 1))] is EdgeType.FULL

    def test_undetermined_upgraded(self):
        g = CellGraph()
        g.add_core_cell((0, 0))
        g.add_undetermined_cell((1, 1))
        g.add_edge((0, 0), (1, 1), EdgeType.UNDETERMINED)
        g.add_edge((0, 0), (1, 1), EdgeType.FULL)
        assert g.edges[((0, 0), (1, 1))] is EdgeType.FULL

    def test_edges_of_type_sorted(self):
        g = make_graph()
        assert g.edges_of_type(EdgeType.FULL) == [((0, 0), (0, 1))]


class TestMerge:
    def test_merge_promotes_undetermined(self):
        a = CellGraph()
        a.add_core_cell((0, 0))
        a.add_undetermined_cell((5, 5))
        a.add_edge((0, 0), (5, 5), EdgeType.UNDETERMINED)
        b = CellGraph()
        b.add_core_cell((5, 5))
        merged = CellGraph.merge(a, b)
        assert merged.vertex_status((5, 5)) == "core"
        assert merged.edges[((0, 0), (5, 5))] is EdgeType.UNDETERMINED
        resolved = merged.detect_edge_types()
        assert resolved == 1
        assert merged.edges[((0, 0), (5, 5))] is EdgeType.FULL

    def test_merge_prefers_determined_edge(self):
        a = CellGraph()
        a.add_core_cell((0, 0))
        a.add_undetermined_cell((1, 1))
        a.add_edge((0, 0), (1, 1), EdgeType.UNDETERMINED)
        b = CellGraph()
        b.add_core_cell((0, 0))
        b.add_core_cell((1, 1))
        b.add_edge((0, 0), (1, 1), EdgeType.FULL)
        merged = CellGraph.merge(a, b)
        assert merged.edges[((0, 0), (1, 1))] is EdgeType.FULL

    def test_merge_noncore_resolution(self):
        a = CellGraph()
        a.add_core_cell((0, 0))
        a.add_undetermined_cell((1, 1))
        a.add_edge((0, 0), (1, 1), EdgeType.UNDETERMINED)
        b = CellGraph()
        b.add_noncore_cell((1, 1))
        merged = CellGraph.merge(a, b)
        merged.detect_edge_types()
        assert merged.edges[((0, 0), (1, 1))] is EdgeType.PARTIAL

    def test_is_global(self):
        g = make_graph()
        assert not g.is_global()
        g2 = CellGraph()
        g2.add_core_cell((0, 0))
        assert g2.is_global()


class TestEdgeReduction:
    def test_cycle_removed(self):
        g = CellGraph()
        for cell in [(0, 0), (0, 1), (1, 0)]:
            g.add_core_cell(cell)
        g.add_edge((0, 0), (0, 1), EdgeType.FULL)
        g.add_edge((0, 1), (1, 0), EdgeType.FULL)
        g.add_edge((1, 0), (0, 0), EdgeType.FULL)
        removed = g.reduce_full_edges()
        assert removed == 1
        assert len(g.edges_of_type(EdgeType.FULL)) == 2

    def test_reverse_duplicate_removed(self):
        g = CellGraph()
        g.add_core_cell((0, 0))
        g.add_core_cell((0, 1))
        g.add_edge((0, 0), (0, 1), EdgeType.FULL)
        g.add_edge((0, 1), (0, 0), EdgeType.FULL)
        assert g.reduce_full_edges() == 1

    def test_partial_edges_untouched(self):
        g = make_graph()
        before = g.edges_of_type(EdgeType.PARTIAL)
        g.reduce_full_edges()
        assert g.edges_of_type(EdgeType.PARTIAL) == before

    def test_connectivity_preserved(self):
        from repro.graph.spanning_forest import connected_components

        g = CellGraph()
        cells = [(i, 0) for i in range(6)]
        for cell in cells:
            g.add_core_cell(cell)
        edges = [
            (cells[0], cells[1]),
            (cells[1], cells[2]),
            (cells[2], cells[0]),
            (cells[3], cells[4]),
            (cells[4], cells[5]),
            (cells[5], cells[3]),
        ]
        for src, dst in edges:
            g.add_edge(src, dst, EdgeType.FULL)
        before = connected_components(cells, g.edges_of_type(EdgeType.FULL))
        g.reduce_full_edges()
        after = connected_components(cells, g.edges_of_type(EdgeType.FULL))
        assert before == after


class TestValidate:
    def test_valid_graph_passes(self):
        make_graph().validate()

    def test_unknown_vertex_rejected(self):
        g = CellGraph()
        g.add_core_cell((0, 0))
        g.edges[((0, 0), (9, 9))] = EdgeType.FULL
        with pytest.raises(ValueError):
            g.validate()

    def test_noncore_source_rejected(self):
        g = CellGraph()
        g.add_noncore_cell((0, 0))
        g.add_core_cell((1, 1))
        g.edges[((0, 0), (1, 1))] = EdgeType.PARTIAL
        with pytest.raises(ValueError):
            g.validate()

    def test_full_edge_to_noncore_rejected(self):
        g = CellGraph()
        g.add_core_cell((0, 0))
        g.add_noncore_cell((1, 1))
        g.edges[((0, 0), (1, 1))] = EdgeType.FULL
        with pytest.raises(ValueError):
            g.validate()
