"""FlatCellGraph: the columnar cell graph vs the CellGraph reference.

Every behavior the tournament relies on — construction, absorb, edge-type
detection, reduction, serialization — must be bit-identical between the
struct-of-arrays layout and the dict-of-tuples reference.  Vertex ids are
dense flat rows (PR 4), so both layouts speak the same integer universe.
"""

import numpy as np
import pytest

from repro.core.cell_graph import (
    V_ABSENT,
    V_CORE,
    V_NONCORE,
    V_UNDETERMINED,
    CellGraph,
    EdgeType,
    FlatCellGraph,
)
from repro.core.cells import CellGeometry
from repro.core.construction import QueryContext, build_cell_subgraph
from repro.core.dictionary import CellDictionary
from repro.core.merging import merge_match, progressive_merge
from repro.core.partitioning import pseudo_random_partition
from repro.core.serialization import (
    deserialize_cell_graph,
    serialize_cell_graph,
)
from repro.graph.spanning_forest import (
    connected_components,
    connected_components_arrays,
)
from repro.graph.union_find import ArrayUnionFind


def canonical(labels: dict) -> frozenset:
    groups: dict = {}
    for item, label in labels.items():
        groups.setdefault(label, set()).add(item)
    return frozenset(frozenset(g) for g in groups.values())


def pipeline_subgraphs(seed: int, layout: str):
    """Phase I + II on a two-blob dataset, in the requested layout."""
    rng = np.random.default_rng(seed)
    pts = np.concatenate(
        [rng.normal([0, 0], 0.2, (60, 2)), rng.normal([4, 4], 0.2, (60, 2))]
    )
    geometry = CellGeometry(0.5, 2, 0.01)
    partitions = pseudo_random_partition(pts, geometry, 4, seed=seed)
    dictionary = CellDictionary.from_points(pts, geometry)
    context = QueryContext(dictionary)
    graphs = [
        build_cell_subgraph(p, context, 5, graph_layout=layout).graph
        for p in partitions
    ]
    return graphs, dictionary.num_cells


def full_components(graph) -> frozenset:
    return canonical(
        connected_components(
            sorted(graph.core), graph.edges_of_type(EdgeType.FULL)
        )
    )


SEEDS = [0, 1, 2, 3, 4]


class TestConstructionParity:
    """Phase II must emit the same subgraph in either layout."""

    @pytest.mark.parametrize("seed", SEEDS)
    def test_vertices_and_edges_identical(self, seed):
        flat_graphs, n_slots = pipeline_subgraphs(seed, "flat")
        dict_graphs, _ = pipeline_subgraphs(seed, "dict")
        for flat, ref in zip(flat_graphs, dict_graphs):
            assert isinstance(flat, FlatCellGraph)
            assert isinstance(ref, CellGraph)
            assert flat.n_slots == n_slots
            assert flat.core == ref.core
            assert flat.noncore == ref.noncore
            assert flat.undetermined == ref.undetermined
            for etype in EdgeType:
                assert flat.edges_of_type(etype) == ref.edges_of_type(etype)
            flat.validate()

    @pytest.mark.parametrize("seed", SEEDS[:2])
    def test_invalid_layout_rejected(self, seed):
        rng = np.random.default_rng(seed)
        pts = rng.normal(0, 1, (30, 2))
        geometry = CellGeometry(0.5, 2, 0.01)
        partitions = pseudo_random_partition(pts, geometry, 2, seed=0)
        dictionary = CellDictionary.from_points(pts, geometry)
        with pytest.raises(ValueError, match="graph_layout"):
            build_cell_subgraph(
                partitions[0], QueryContext(dictionary), 5,
                graph_layout="sparse",
            )


class TestMergeParity:
    """merge_match and the full tournament agree across layouts."""

    @pytest.mark.parametrize("seed", SEEDS)
    def test_merge_match_counts_and_edges(self, seed):
        flat_graphs, _ = pipeline_subgraphs(seed, "flat")
        dict_graphs, _ = pipeline_subgraphs(seed, "dict")
        fa, fb = flat_graphs[0].copy(), flat_graphs[1].copy()
        da, db = dict_graphs[0].copy(), dict_graphs[1].copy()
        f_merged, f_resolved, f_removed = merge_match(fa, fb)
        d_merged, d_resolved, d_removed = merge_match(da, db)
        assert f_resolved == d_resolved
        assert f_removed == d_removed
        # PARTIAL/UNDETERMINED edges are never reduced, so they match
        # exactly; the surviving FULL set is a spanning structure whose
        # membership depends on test order — only its connectivity (and
        # size, via the removed count) is pinned down.
        for etype in (EdgeType.PARTIAL, EdgeType.UNDETERMINED):
            assert f_merged.edges_of_type(etype) == d_merged.edges_of_type(
                etype
            )
        assert f_merged.core == d_merged.core
        assert f_merged.noncore == d_merged.noncore
        assert len(f_merged.edges_of_type(EdgeType.FULL)) == len(
            d_merged.edges_of_type(EdgeType.FULL)
        )
        assert full_components(f_merged) == full_components(d_merged)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_progressive_merge_stats_and_components(self, seed):
        flat_graphs, _ = pipeline_subgraphs(seed, "flat")
        dict_graphs, _ = pipeline_subgraphs(seed, "dict")
        f_final, f_stats = progressive_merge(flat_graphs)
        d_final, d_stats = progressive_merge(dict_graphs)
        assert f_stats.edges_per_round == d_stats.edges_per_round
        assert f_stats.resolved_per_round == d_stats.resolved_per_round
        assert f_stats.removed_per_round == d_stats.removed_per_round
        assert f_final.is_global() and d_final.is_global()
        assert full_components(f_final) == full_components(d_final)

    @pytest.mark.parametrize("seed", SEEDS[:3])
    def test_reduction_off_parity(self, seed):
        flat_graphs, _ = pipeline_subgraphs(seed, "flat")
        dict_graphs, _ = pipeline_subgraphs(seed, "dict")
        f_final, f_stats = progressive_merge(flat_graphs, reduce_edges=False)
        d_final, d_stats = progressive_merge(dict_graphs, reduce_edges=False)
        assert f_stats.edges_per_round == d_stats.edges_per_round
        assert f_final.num_edges == d_final.num_edges
        assert full_components(f_final) == full_components(d_final)


class TestConversions:
    @pytest.mark.parametrize("seed", SEEDS[:3])
    def test_round_trip_through_dict(self, seed):
        flat_graphs, n_slots = pipeline_subgraphs(seed, "flat")
        for flat in flat_graphs:
            back = FlatCellGraph.from_cell_graph(
                flat.to_cell_graph(), n_slots
            )
            assert np.array_equal(back.status, flat.status)
            for etype in EdgeType:
                assert back.edges_of_type(etype) == flat.edges_of_type(etype)
            # Pending FULL edges survive the round trip (as a set — the
            # dict keeps insertion order, the flat graph positions).
            pend = lambda g: {
                (int(g.src[e]), int(g.dst[e])) for e in g._pending
            }
            assert pend(back) == pend(flat)

    @pytest.mark.parametrize("seed", SEEDS[:3])
    def test_round_trip_through_flat(self, seed):
        dict_graphs, n_slots = pipeline_subgraphs(seed, "dict")
        for ref in dict_graphs:
            back = FlatCellGraph.from_cell_graph(ref, n_slots).to_cell_graph()
            assert back.edges == ref.edges
            assert back.core == ref.core
            assert back.noncore == ref.noncore
            assert back.undetermined == ref.undetermined


class TestSerialization:
    @pytest.mark.parametrize("seed", SEEDS[:3])
    def test_flat_blob_round_trip(self, seed):
        flat_graphs, _ = pipeline_subgraphs(seed, "flat")
        graph = flat_graphs[0]
        blob = serialize_cell_graph(graph)
        back = deserialize_cell_graph(blob)
        assert isinstance(back, FlatCellGraph)
        assert np.array_equal(back.status, graph.status)
        assert np.array_equal(back.src, graph.src)
        assert np.array_equal(back.dst, graph.dst)
        assert np.array_equal(back.etype, graph.etype)
        assert back._pending == graph._pending
        assert np.array_equal(
            back._forest.roots(), graph._forest.roots()
        )

    def test_dict_blob_round_trip(self):
        graph = CellGraph()
        graph.add_core_cell(0)
        graph.add_noncore_cell(1)
        graph.add_edge(0, 1, EdgeType.PARTIAL)
        back = deserialize_cell_graph(serialize_cell_graph(graph))
        assert isinstance(back, CellGraph)
        assert back.edges == graph.edges

    def test_unknown_magic_rejected(self):
        with pytest.raises(ValueError):
            deserialize_cell_graph(b"NOPE" + b"\x00" * 16)


class TestFlatGraphUnits:
    def test_vertex_classes_and_promotion(self):
        g = FlatCellGraph(4)
        g.add_undetermined_cell(0)
        g.add_noncore_cell(1)
        g.add_core_cell(2)
        assert g.vertex_status(0) == "undetermined"
        assert g.vertex_status(1) == "noncore"
        assert g.vertex_status(2) == "core"
        assert g.vertex_status(3) == "absent"
        # Undetermined never demotes a determined cell.
        g.add_undetermined_cell(1)
        assert g.vertex_status(1) == "noncore"
        with pytest.raises(ValueError):
            g.add_noncore_cell(2)
        assert g.num_vertices == 3
        assert not g.is_global()

    def test_add_edge_upgrade_feeds_pending(self):
        g = FlatCellGraph(3)
        g.add_core_cell(0)
        g.add_undetermined_cell(1)
        g.add_edge(0, 1, EdgeType.UNDETERMINED)
        assert g._pending == []
        g.add_core_cell(1)
        g.add_edge(0, 1, EdgeType.FULL)
        assert g.num_edges == 1  # upgraded in place, not duplicated
        assert g._pending == [0]
        assert g.reduce_full_edges() == 0  # first tree edge survives

    def test_absorb_overlap_falls_back_to_reference(self):
        # Hand-built graphs can share an edge key; the result must match
        # the dict reference's determined-wins semantics exactly.
        a = FlatCellGraph(2)
        a.add_core_cell(0)
        a.add_undetermined_cell(1)
        a.add_edge(0, 1, EdgeType.UNDETERMINED)
        b = FlatCellGraph(2)
        b.add_core_cell(0)
        b.add_core_cell(1)
        b.add_edge(0, 1, EdgeType.FULL)
        ref_a, ref_b = a.to_cell_graph(), b.to_cell_graph()
        a.absorb(b)
        ref_a.absorb(ref_b)
        assert a.num_edges == ref_a.num_edges == 1
        for etype in EdgeType:
            assert a.edges_of_type(etype) == ref_a.edges_of_type(etype)

    def test_absorb_universe_mismatch(self):
        with pytest.raises(ValueError, match="universe"):
            FlatCellGraph(2).absorb(FlatCellGraph(3))

    def test_validate_catches_corruption(self):
        g = FlatCellGraph(3)
        g.add_core_cell(0)
        g.add_core_cell(1)
        g.add_edge(0, 1, EdgeType.FULL)
        g.validate()
        bad = g.copy()
        bad.status[1] = V_ABSENT
        with pytest.raises(ValueError):
            bad.validate()
        bad = g.copy()
        bad.etype[0] = int(EdgeType.PARTIAL)
        with pytest.raises(ValueError, match="non-core"):
            bad.validate()
        bad = g.copy()
        bad.src = np.append(bad.src, np.int32(0))
        bad.dst = np.append(bad.dst, np.int32(1))
        bad.etype = np.append(bad.etype, np.int8(int(EdgeType.FULL)))
        with pytest.raises(ValueError, match="duplicate"):
            bad.validate()

    def test_status_priority_constants(self):
        # absorb uses np.maximum over these, so the order is load-bearing.
        assert V_ABSENT < V_UNDETERMINED < V_NONCORE < V_CORE


class TestArrayUnionFind:
    def test_union_find_connected(self):
        uf = ArrayUnionFind(5)
        assert uf.union(0, 1)
        assert uf.union(1, 2)
        assert not uf.union(0, 2)  # cycle
        assert uf.connected(0, 2)
        assert not uf.connected(0, 3)

    def test_merge_from_and_copy(self):
        a = ArrayUnionFind(4)
        a.union(0, 1)
        b = a.copy()
        b.union(2, 3)
        assert not a.connected(2, 3)
        a.merge_from(b)
        assert a.connected(2, 3)
        with pytest.raises(ValueError, match="universe"):
            a.merge_from(ArrayUnionFind(5))

    def test_array_round_trip(self):
        uf = ArrayUnionFind(6)
        uf.union(0, 3)
        uf.union(4, 5)
        back = ArrayUnionFind.from_array(uf.to_array())
        for i in range(6):
            for j in range(6):
                assert back.connected(i, j) == uf.connected(i, j)

    def test_components_match_hash_reference(self):
        rng = np.random.default_rng(7)
        n = 40
        src = rng.integers(0, n, 60).astype(np.int32)
        dst = rng.integers(0, n, 60).astype(np.int32)
        labels = connected_components_arrays(n, src, dst)
        ref = connected_components(
            range(n), list(zip(src.tolist(), dst.tolist()))
        )
        assert canonical(dict(enumerate(labels.tolist()))) == canonical(ref)
        # Canonical numbering: components ordered by smallest member.
        assert labels[0] == 0
