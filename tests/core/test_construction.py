"""Unit tests for repro.core.construction (Phase II, Algorithm 3)."""

import numpy as np
import pytest

from repro.core.cell_graph import EdgeType
from repro.core.cells import CellGeometry
from repro.core.construction import QueryContext, build_cell_subgraph
from repro.core.dictionary import CellDictionary
from repro.core.partitioning import pseudo_random_partition


@pytest.fixture(scope="module")
def workload(two_blobs_module):
    return two_blobs_module


@pytest.fixture(scope="module")
def two_blobs_module():
    rng = np.random.default_rng(42)
    return np.concatenate(
        [rng.normal([0, 0], 0.1, (300, 2)), rng.normal([3, 0], 0.1, (300, 2))]
    )


@pytest.fixture(scope="module")
def setup(workload):
    geometry = CellGeometry(eps=0.3, dim=2, rho=0.01)
    partitions = pseudo_random_partition(workload, geometry, 4, seed=0)
    dictionary = CellDictionary.from_points(workload, geometry)
    context = QueryContext(dictionary)
    return geometry, partitions, context


class TestCoreMarking:
    def test_core_mask_matches_exact_density(self, workload, setup):
        # With tiny rho, the approximate core decision must match the
        # exact |N_eps(p)| >= minPts one (up to boundary coincidences).
        geometry, partitions, context = setup
        min_pts = 10
        eps = geometry.eps
        mismatches = 0
        for partition in partitions:
            result = build_cell_subgraph(partition, context, min_pts)
            for row in range(partition.num_points):
                diff = workload - partition.points[row]
                exact = int(
                    np.count_nonzero(np.einsum("ij,ij->i", diff, diff) <= eps * eps)
                )
                if (exact >= min_pts) != bool(result.core_mask[row]):
                    mismatches += 1
        assert mismatches <= 2

    def test_all_dense_points_core(self, setup):
        geometry, partitions, context = setup
        results = [build_cell_subgraph(p, context, 5) for p in partitions]
        total_core = sum(int(r.core_mask.sum()) for r in results)
        # Blob points are very dense; nearly everything is core.
        assert total_core >= 590

    def test_min_pts_one_everything_core(self, setup):
        _, partitions, context = setup
        for partition in partitions:
            result = build_cell_subgraph(partition, context, 1)
            assert bool(result.core_mask.all())

    def test_huge_min_pts_nothing_core(self, setup):
        _, partitions, context = setup
        for partition in partitions:
            result = build_cell_subgraph(partition, context, 10_000)
            assert not result.core_mask.any()
            assert not result.graph.core

    def test_rejects_bad_min_pts(self, setup):
        _, partitions, context = setup
        with pytest.raises(ValueError):
            build_cell_subgraph(partitions[0], context, 0)


class TestSubgraphStructure:
    def test_graph_validates(self, setup):
        _, partitions, context = setup
        for partition in partitions:
            result = build_cell_subgraph(partition, context, 10)
            result.graph.validate()

    def test_owned_cells_all_classified(self, setup):
        _, partitions, context = setup
        index_map = context.dictionary.index_map
        for partition in partitions:
            result = build_cell_subgraph(partition, context, 10)
            owned = {index_map[c] for c in partition.cell_slices}
            classified = result.graph.core | result.graph.noncore
            assert owned == classified

    def test_intra_partition_edges_are_determined(self, setup):
        _, partitions, context = setup
        index_map = context.dictionary.index_map
        for partition in partitions:
            result = build_cell_subgraph(partition, context, 10)
            owned = {index_map[c] for c in partition.cell_slices}
            for (src, dst), edge_type in result.graph.edges.items():
                assert src in owned
                if dst in owned:
                    assert edge_type in (EdgeType.FULL, EdgeType.PARTIAL)
                else:
                    assert edge_type is EdgeType.UNDETERMINED
                    assert dst in result.graph.undetermined

    def test_no_self_edges(self, setup):
        _, partitions, context = setup
        for partition in partitions:
            result = build_cell_subgraph(partition, context, 10)
            assert all(src != dst for src, dst in result.graph.edges)

    def test_query_count_equals_points(self, setup):
        _, partitions, context = setup
        for partition in partitions:
            result = build_cell_subgraph(partition, context, 10)
            assert result.num_queries == partition.num_points

    def test_edges_sources_are_core(self, setup):
        _, partitions, context = setup
        for partition in partitions:
            result = build_cell_subgraph(partition, context, 10)
            for src, _ in result.graph.edges:
                assert src in result.graph.core


class TestQueryContext:
    def test_engine_cached(self, setup):
        _, _, context = setup
        assert context.engine is context.engine

    def test_pickle_drops_engine(self, setup):
        import pickle

        _, _, context = setup
        context.engine  # force build
        clone = pickle.loads(pickle.dumps(context))
        assert clone._engine is None
        assert clone.engine is not None  # lazily rebuilt

    def test_defragment_capacity_enables_stats(self, workload):
        geometry = CellGeometry(eps=0.3, dim=2, rho=0.05)
        dictionary = CellDictionary.from_points(workload, geometry)
        context = QueryContext(dictionary, defragment_capacity=50)
        [partition] = pseudo_random_partition(workload, geometry, 1, seed=0)
        build_cell_subgraph(partition, context, 10)
        assert context.defragmented is not None
        assert context.defragmented.queries > 0
