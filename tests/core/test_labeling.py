"""Unit tests for repro.core.labeling (Phase III-2, Lemma 3.5)."""

import numpy as np
import pytest

from repro.core.cells import CellGeometry
from repro.core.construction import QueryContext, build_cell_subgraph
from repro.core.dictionary import CellDictionary
from repro.core.labeling import NOISE, build_labeling_context, label_partition
from repro.core.merging import progressive_merge
from repro.core.partitioning import pseudo_random_partition


@pytest.fixture(scope="module")
def pipeline():
    """Full Phase I+II+III-1 output for a 2-cluster + noise workload."""
    rng = np.random.default_rng(0)
    pts = np.concatenate(
        [
            rng.normal([0, 0], 0.12, (400, 2)),
            rng.normal([3, 0], 0.12, (400, 2)),
            rng.uniform(-1, 4, (60, 2)),
        ]
    )
    geometry = CellGeometry(eps=0.3, dim=2, rho=0.01)
    partitions = pseudo_random_partition(pts, geometry, 4, seed=0)
    dictionary = CellDictionary.from_points(pts, geometry)
    context = QueryContext(dictionary)
    results = [build_cell_subgraph(p, context, 10) for p in partitions]
    graph, _ = progressive_merge([r.graph for r in results])
    core_masks = {r.pid: r.core_mask for r in results}
    labeling = build_labeling_context(
        graph, partitions, core_masks, geometry.eps, dictionary.index_map
    )
    return pts, partitions, results, graph, labeling


class TestLabelingContext:
    def test_every_core_cell_has_cluster(self, pipeline):
        _, _, _, graph, labeling = pipeline
        assert set(labeling.cell_labels) == graph.core

    def test_cluster_ids_dense(self, pipeline):
        _, _, _, _, labeling = pipeline
        ids = set(labeling.cell_labels.values())
        assert ids == set(range(len(ids)))

    def test_n_clusters(self, pipeline):
        _, _, _, _, labeling = pipeline
        assert labeling.n_clusters == 2

    def test_predecessors_sorted_core_cells(self, pipeline):
        _, _, _, graph, labeling = pipeline
        for dst, preds in labeling.predecessors.items():
            assert preds == sorted(preds)
            assert dst in graph.noncore
            for pred in preds:
                assert pred in graph.core

    def test_predecessor_points_are_core(self, pipeline):
        pts, partitions, results, _, labeling = pipeline
        for cell_id, core_points in labeling.predecessor_core_points.items():
            # Each stored point must be a real data point marked core.
            for p in core_points:
                assert np.any(np.all(np.isclose(pts, p), axis=1))


class TestLabelPartition:
    def test_core_cell_points_share_cluster(self, pipeline):
        _, partitions, _, _, labeling = pipeline
        for partition in partitions:
            _, labels = label_partition(partition, labeling)
            for cell_id, (start, stop) in partition.cell_slices.items():
                cluster = labeling.cell_labels.get(labeling.index_map[cell_id])
                if cluster is not None:
                    assert np.all(labels[start:stop] == cluster)

    def test_border_points_within_eps_of_core(self, pipeline):
        pts, partitions, results, _, labeling = pipeline
        eps = labeling.eps
        all_core_points = np.concatenate(
            [p.points[r.core_mask] for p, r in zip(partitions, results)]
        )
        for partition in partitions:
            _, labels = label_partition(partition, labeling)
            for cell_id, (start, stop) in partition.cell_slices.items():
                if labeling.index_map[cell_id] in labeling.cell_labels:
                    continue
                for row in range(start, stop):
                    if labels[row] != NOISE:
                        diff = all_core_points - partition.points[row]
                        dist = np.sqrt(np.einsum("ij,ij->i", diff, diff))
                        assert dist.min() <= eps + 1e-9

    def test_noise_points_have_no_core_neighbor(self, pipeline):
        pts, partitions, results, _, labeling = pipeline
        eps = labeling.eps
        all_core_points = np.concatenate(
            [p.points[r.core_mask] for p, r in zip(partitions, results)]
        )
        violations = 0
        for partition in partitions:
            _, labels = label_partition(partition, labeling)
            noise_rows = np.nonzero(labels == NOISE)[0]
            for row in noise_rows:
                diff = all_core_points - partition.points[row]
                dist = np.sqrt(np.einsum("ij,ij->i", diff, diff))
                if dist.min() <= eps - 1e-9:
                    violations += 1
        assert violations == 0

    def test_returns_alignment(self, pipeline):
        _, partitions, _, _, labeling = pipeline
        for partition in partitions:
            indices, labels = label_partition(partition, labeling)
            assert indices.shape == labels.shape == (partition.num_points,)
            np.testing.assert_array_equal(indices, partition.global_indices)

    def test_two_clusters_not_merged(self, pipeline):
        pts, partitions, _, _, labeling = pipeline
        # Points from the two blobs must get different cluster ids.
        full_labels = np.full(pts.shape[0], NOISE, dtype=np.int64)
        for partition in partitions:
            indices, labels = label_partition(partition, labeling)
            full_labels[indices] = labels
        blob_a = set(full_labels[:400].tolist()) - {NOISE}
        blob_b = set(full_labels[400:800].tolist()) - {NOISE}
        assert len(blob_a) == 1 and len(blob_b) == 1
        assert blob_a != blob_b
