"""Unit tests for repro.core.cells (Definitions 3.1 and 4.1)."""

import math

import numpy as np
import pytest

from repro.core.cells import CellGeometry, h_for_rho


class TestHForRho:
    """h = 1 + ceil(log2(1/rho)) — Definition 4.1."""

    @pytest.mark.parametrize(
        "rho,expected",
        [(1.0, 1), (0.5, 2), (0.25, 3), (0.10, 5), (0.05, 6), (0.01, 8)],
    )
    def test_values(self, rho, expected):
        assert h_for_rho(rho) == expected

    def test_rejects_invalid(self):
        with pytest.raises(ValueError):
            h_for_rho(0.0)
        with pytest.raises(ValueError):
            h_for_rho(1.5)
        with pytest.raises(ValueError):
            h_for_rho(-0.1)


class TestGeometry:
    def test_sub_diagonal_bounded_by_rho_eps(self):
        # Definition 4.1 guarantees sub-cell diagonal <= rho * eps.
        for rho in (0.01, 0.05, 0.10, 0.37, 1.0):
            geometry = CellGeometry(eps=2.0, dim=3, rho=rho)
            assert geometry.sub_diagonal <= rho * geometry.eps + 1e-12

    def test_splits_per_dim(self):
        geometry = CellGeometry(eps=1.0, dim=2, rho=0.01)
        assert geometry.splits_per_dim == 2 ** (geometry.h - 1) == 128

    def test_subcells_per_cell(self):
        geometry = CellGeometry(eps=1.0, dim=2, rho=0.5)
        assert geometry.subcells_per_cell == 4  # 2^(d(h-1)) with h=2, d=2

    def test_side_times_sqrt_d_is_eps(self):
        geometry = CellGeometry(eps=0.7, dim=5, rho=0.1)
        assert math.isclose(geometry.side * math.sqrt(5), 0.7)


class TestPointAssignment:
    def test_cell_ids_match_grid(self):
        geometry = CellGeometry(eps=math.sqrt(2), dim=2, rho=0.5)  # side = 1
        pts = np.array([[0.5, 0.5], [-0.1, 1.9], [2.0, -3.0]])
        ids = geometry.cell_ids(pts)
        assert ids.tolist() == [[0, 0], [-1, 1], [2, -3]]

    def test_sub_cell_coords_in_range(self):
        geometry = CellGeometry(eps=1.0, dim=3, rho=0.05)
        rng = np.random.default_rng(0)
        pts = rng.uniform(-2, 2, (200, 3))
        ids = geometry.cell_ids(pts)
        local = geometry.sub_cell_coords(pts, ids)
        assert local.dtype == np.uint16
        assert local.min() >= 0
        assert local.max() < geometry.splits_per_dim

    def test_point_within_half_sub_diagonal_of_center(self):
        # The approximation premise of Lemma 5.2: dist(p, center of its
        # sub-cell) <= rho * eps / 2.
        geometry = CellGeometry(eps=0.8, dim=2, rho=0.05)
        rng = np.random.default_rng(1)
        pts = rng.uniform(-1, 1, (300, 2))
        ids = geometry.cell_ids(pts)
        local = geometry.sub_cell_coords(pts, ids)
        for i in range(pts.shape[0]):
            center = geometry.sub_cell_centers(
                tuple(ids[i].tolist()), local[i][None, :]
            )[0]
            dist = float(np.linalg.norm(pts[i] - center))
            assert dist <= geometry.rho * geometry.eps / 2 + 1e-12

    def test_boundary_point_clamped(self):
        geometry = CellGeometry(eps=math.sqrt(2), dim=2, rho=0.5)
        # A point exactly on the upper corner of cell (0,0) belongs to
        # cell (1,1); feed it cell (0,0) ids to exercise the clamp.
        pts = np.array([[1.0, 1.0]])
        local = geometry.sub_cell_coords(pts, np.array([[0, 0]]))
        assert local.max() == geometry.splits_per_dim - 1


class TestCellBoxes:
    def test_box_contains_its_points(self):
        geometry = CellGeometry(eps=0.6, dim=2, rho=0.1)
        rng = np.random.default_rng(2)
        pts = rng.uniform(-2, 2, (100, 2))
        ids = geometry.cell_ids(pts)
        for i in range(pts.shape[0]):
            lo, hi = geometry.cell_box(tuple(ids[i].tolist()))
            assert np.all(pts[i] >= lo - 1e-12) and np.all(pts[i] <= hi + 1e-12)

    def test_box_min_distance_adjacent_is_zero(self):
        geometry = CellGeometry(eps=1.0, dim=2, rho=0.5)
        assert geometry.cell_box_min_distance((0, 0), (1, 0)) == 0.0

    def test_box_min_distance_with_gap(self):
        geometry = CellGeometry(eps=math.sqrt(2), dim=2, rho=0.5)  # side 1
        assert math.isclose(geometry.cell_box_min_distance((0, 0), (3, 0)), 2.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            CellGeometry(eps=-1.0, dim=2, rho=0.5)
        with pytest.raises(ValueError):
            CellGeometry(eps=1.0, dim=2, rho=0.0)
