"""Unit tests for repro.core.partitioning (Sec 4.1, Algorithm 2)."""

import numpy as np
import pytest

from repro.core.cells import CellGeometry
from repro.core.partitioning import pseudo_random_partition, true_random_partition


@pytest.fixture()
def geometry():
    return CellGeometry(eps=0.5, dim=2, rho=0.05)


@pytest.fixture()
def points():
    rng = np.random.default_rng(0)
    return rng.uniform(0, 4, (2000, 2))


class TestPseudoRandomPartition:
    def test_is_a_partition_of_points(self, points, geometry):
        partitions = pseudo_random_partition(points, geometry, 5, seed=0)
        indices = np.concatenate([p.global_indices for p in partitions])
        assert sorted(indices.tolist()) == list(range(points.shape[0]))

    def test_cells_never_split(self, points, geometry):
        # Every cell's points land in exactly one partition.
        partitions = pseudo_random_partition(points, geometry, 5, seed=0)
        owners: dict[tuple, int] = {}
        for p in partitions:
            for cell_id in p.cell_slices:
                assert cell_id not in owners, "cell appears in two partitions"
                owners[cell_id] = p.pid

    def test_cell_slices_consistent(self, points, geometry):
        partitions = pseudo_random_partition(points, geometry, 4, seed=1)
        for p in partitions:
            covered = 0
            for cell_id, (start, stop) in p.cell_slices.items():
                ids = geometry.cell_ids(p.points[start:stop])
                assert np.all(ids == np.array(cell_id))
                covered += stop - start
            assert covered == p.num_points

    def test_global_indices_match_points(self, points, geometry):
        partitions = pseudo_random_partition(points, geometry, 3, seed=2)
        for p in partitions:
            np.testing.assert_array_equal(points[p.global_indices], p.points)

    def test_deterministic_given_seed(self, points, geometry):
        a = pseudo_random_partition(points, geometry, 4, seed=7)
        b = pseudo_random_partition(points, geometry, 4, seed=7)
        for pa, pb in zip(a, b):
            np.testing.assert_array_equal(pa.global_indices, pb.global_indices)

    def test_different_seeds_differ(self, points, geometry):
        a = pseudo_random_partition(points, geometry, 4, seed=1)
        b = pseudo_random_partition(points, geometry, 4, seed=2)
        same = all(
            np.array_equal(pa.global_indices, pb.global_indices)
            for pa, pb in zip(a, b)
        )
        assert not same

    def test_shuffle_method_balances_cell_counts(self, points, geometry):
        partitions = pseudo_random_partition(
            points, geometry, 4, seed=0, method="shuffle"
        )
        counts = [p.num_cells for p in partitions]
        assert max(counts) - min(counts) <= 1

    def test_partition_count_exact(self, points, geometry):
        partitions = pseudo_random_partition(points, geometry, 7, seed=0)
        assert len(partitions) == 7
        assert [p.pid for p in partitions] == list(range(7))

    def test_more_partitions_than_cells(self, geometry):
        pts = np.array([[0.1, 0.1], [0.11, 0.12]])  # one cell
        partitions = pseudo_random_partition(pts, geometry, 5, seed=0)
        non_empty = [p for p in partitions if p.num_points]
        assert len(non_empty) == 1 and non_empty[0].num_points == 2

    def test_balance_with_many_cells(self, geometry):
        rng = np.random.default_rng(3)
        pts = rng.uniform(0, 20, (20_000, 2))  # thousands of cells
        partitions = pseudo_random_partition(pts, geometry, 8, seed=0)
        sizes = np.array([p.num_points for p in partitions])
        # Random-key assignment over many cells: sizes within 20% of mean.
        assert sizes.max() <= 1.2 * sizes.mean()
        assert sizes.min() >= 0.8 * sizes.mean()

    def test_validation(self, points, geometry):
        with pytest.raises(ValueError):
            pseudo_random_partition(points, geometry, 0)
        with pytest.raises(ValueError):
            pseudo_random_partition(points, geometry, 2, method="magic")
        with pytest.raises(ValueError):
            pseudo_random_partition(np.zeros((4, 3)), geometry, 2)

    def test_partition_helpers(self, points, geometry):
        [p] = pseudo_random_partition(points, geometry, 1, seed=0)
        cell_id = next(iter(p.cell_slices))
        np.testing.assert_array_equal(
            points[p.cell_global_indices(cell_id)], p.cell_points(cell_id)
        )


class TestTrueRandomPartition:
    def test_is_a_partition_of_points(self, points, geometry):
        partitions = true_random_partition(points, geometry, 5, seed=0)
        indices = np.concatenate([p.global_indices for p in partitions])
        assert sorted(indices.tolist()) == list(range(points.shape[0]))

    def test_splits_cells_across_partitions(self, geometry):
        # The defining difference from pseudo random partitioning.
        pts = np.tile([0.2, 0.2], (100, 1))  # all in one cell
        partitions = true_random_partition(pts, geometry, 4, seed=0)
        holders = [p for p in partitions if p.num_points]
        assert len(holders) == 4

    def test_sizes_nearly_equal(self, points, geometry):
        partitions = true_random_partition(points, geometry, 7, seed=0)
        sizes = [p.num_points for p in partitions]
        assert max(sizes) - min(sizes) <= 1
