"""Unit tests for the budgeted sharded dictionary (Sec 4.2.2, Lemma 5.10)."""

import numpy as np
import pytest

from repro.core.cells import CellGeometry
from repro.core.defragmentation import defragment
from repro.core.dictionary import FlatCellDictionary
from repro.core.region_query import RegionQueryEngine
from repro.core.sharding import (
    InMemoryShardStore,
    PartialFlatDictionary,
    ShardedFlatDictionary,
    live_residency_stats,
)
from repro.spatial.cell_index import NeighborCellFinder


@pytest.fixture()
def geometry():
    return CellGeometry(eps=0.5, dim=2, rho=0.1)


@pytest.fixture()
def flat(geometry):
    rng = np.random.default_rng(0)
    pts = rng.uniform(0, 5, (3000, 2))
    return FlatCellDictionary.from_points(pts, geometry)


@pytest.fixture()
def sharded(flat):
    return ShardedFlatDictionary.from_defragmented(defragment(flat, capacity=200))


class TestRootParity:
    def test_root_arrays_alias_the_flat_dictionary(self, flat, sharded):
        np.testing.assert_array_equal(sharded.cell_ids, flat.cell_ids)
        np.testing.assert_array_equal(sharded.cell_counts, flat.cell_counts)
        np.testing.assert_array_equal(sharded.offsets, flat.offsets)
        assert sharded.num_cells == flat.num_cells
        assert sharded.num_subcells == flat.num_subcells
        assert sharded.num_points == flat.num_points
        assert len(sharded) == len(flat)

    def test_every_cell_has_an_owner(self, sharded):
        assert np.all(sharded.shard_owner >= 0)
        assert np.all(sharded.shard_owner < sharded.num_shards)

    def test_find_rows_and_row_of_match(self, flat, sharded):
        ids = flat.cell_ids[::7]
        np.testing.assert_array_equal(sharded.find_rows(ids), flat.find_rows(ids))
        missing = np.full((1, 2), 10_000, dtype=np.int64)
        assert sharded.find_rows(missing)[0] == -1
        cid = flat.cell_at(3)
        assert sharded.row_of(cid) == flat.row_of(cid)
        assert cid in sharded
        with pytest.raises(KeyError):
            sharded.row_of((10_000, 10_000))

    def test_index_map_parity(self, flat, sharded):
        for row in range(0, flat.num_cells, 11):
            cid = flat.cell_at(row)
            assert sharded.index_map[cid] == flat.index_map[cid]


class TestGatherIdentity:
    def test_gather_subcells_bit_identical(self, flat, sharded):
        rng = np.random.default_rng(1)
        for size in (1, 5, 40, flat.num_cells):
            rows = rng.choice(flat.num_cells, size=size, replace=True)
            want_c, want_d, want_s = flat.gather_subcells(rows)
            got_c, got_d, got_s = sharded.gather_subcells(rows)
            np.testing.assert_array_equal(got_c, want_c)
            np.testing.assert_array_equal(got_d, want_d)
            np.testing.assert_array_equal(got_s, want_s)

    def test_gather_empty_rows(self, flat, sharded):
        got_c, got_d, got_s = sharded.gather_subcells(np.empty(0, dtype=np.int64))
        assert got_c.shape == (0, 2) and got_d.shape == (0,) and got_s.shape == (0,)

    def test_per_cell_accessors(self, flat, sharded):
        for row in range(0, flat.num_cells, 13):
            cid = flat.cell_at(row)
            np.testing.assert_array_equal(
                sharded.sub_cell_centers(cid), flat.sub_cell_centers(cid)
            )
            np.testing.assert_array_equal(
                sharded.densities(cid), flat.densities(cid)
            )

    def test_region_queries_bit_identical(self, flat, sharded, geometry):
        reference = RegionQueryEngine(flat)
        budgeted = RegionQueryEngine(sharded)
        rng = np.random.default_rng(2)
        for _ in range(10):
            pt = rng.uniform(0, 5, 2)
            cid = geometry.grid.cell_id_of(pt)
            want = reference.query_cell_batch(cid, pt[None, :])
            got = budgeted.query_cell_batch(cid, pt[None, :])
            np.testing.assert_array_equal(got.counts, want.counts)
            np.testing.assert_array_equal(got.touch, want.touch)
            assert got.candidate_ids == want.candidate_ids


class TestBudgetLRU:
    def _budgeted(self, flat, budget):
        defrag = defragment(flat, capacity=200)
        return ShardedFlatDictionary.from_defragmented(defrag, budget_bytes=budget)

    def test_resident_bytes_never_exceed_budget(self, flat):
        budget = 8192
        sharded = self._budgeted(flat, budget)
        rng = np.random.default_rng(3)
        for _ in range(50):
            rows = rng.choice(flat.num_cells, size=20, replace=False)
            sharded.gather_subcells(rows)
            assert sharded.resident_bytes <= budget
        stats = sharded.residency_stats()
        assert stats["peak_resident_bytes"] <= budget
        assert stats["shard_evictions"] > 0
        assert stats["shard_attaches"] > stats["num_shards"]

    def test_lru_keeps_hot_shard_resident(self, flat):
        sharded = self._budgeted(flat, 8192)
        hot = np.nonzero(sharded.shard_owner == 0)[0][:1]
        sharded.gather_subcells(hot)
        before = sharded.residency_stats()["shard_attaches"]
        sharded.gather_subcells(hot)  # cache hit: no second attach
        assert sharded.residency_stats()["shard_attaches"] == before

    def test_unbounded_budget_never_evicts(self, flat, sharded):
        rng = np.random.default_rng(4)
        for _ in range(20):
            sharded.gather_subcells(rng.choice(flat.num_cells, size=30))
        assert sharded.residency_stats()["shard_evictions"] == 0

    def test_single_shard_over_budget_rejected_up_front(self, flat):
        defrag = defragment(flat, capacity=200)
        with pytest.raises(ValueError, match="broadcast .?budget"):
            ShardedFlatDictionary.from_defragmented(defrag, budget_bytes=16)

    def test_oversized_shard_attach_raises(self, geometry, flat):
        # Bypass the constructor guard with a permissive store to pin
        # down the cache-level error too.
        sharded = ShardedFlatDictionary.from_defragmented(
            defragment(flat, capacity=200)
        )
        blocks = sharded.export_shard_blocks()
        small = PartialFlatDictionary(
            geometry,
            sharded.cell_ids,
            sharded.cell_counts,
            sharded.offsets,
            sharded.shard_owner,
            sharded.local_starts,
            sharded.shard_box_lo,
            sharded.shard_box_hi,
            InMemoryShardStore(blocks),
            budget_bytes=16,
        )
        with pytest.raises(RuntimeError, match="exceeds the broadcast budget"):
            small.gather_subcells(np.array([0]))

    def test_close_releases_everything(self, flat):
        sharded = self._budgeted(flat, 1 << 20)
        sharded.gather_subcells(np.arange(flat.num_cells))
        assert sharded.resident_bytes > 0
        sharded.close()
        assert sharded.resident_bytes == 0

    def test_rejects_nonpositive_budget(self, flat):
        with pytest.raises(ValueError):
            self._budgeted(flat, 0)


class TestRestrict:
    def test_attach_outside_allowed_set_raises(self, flat, sharded):
        target = np.nonzero(sharded.shard_owner == 0)[0][:1]
        sharded.restrict([s for s in range(sharded.num_shards) if s != 0])
        with pytest.raises(RuntimeError, match="reachable set"):
            sharded.gather_subcells(target)
        sharded.restrict(None)  # lifting the restriction unblocks it
        sharded.gather_subcells(target)

    def test_resident_shard_stays_usable_after_restrict(self, flat, sharded):
        target = np.nonzero(sharded.shard_owner == 0)[0][:1]
        sharded.gather_subcells(target)  # attach while unrestricted
        sharded.restrict([1])
        # Already-resident blocks answer without a (forbidden) attach.
        sharded.gather_subcells(target)
        sharded.restrict(None)


class TestReachability:
    def test_reachable_shards_superset_of_candidate_demand(self, flat, sharded):
        # Lemma 5.10 soundness, cache-geometry version: the shards the
        # candidate finder can demand for queries from a cell are always
        # within that cell's reachable set.
        finder = NeighborCellFinder(
            flat.cell_ids, flat.geometry.side, flat.geometry.eps
        )
        for row in range(0, flat.num_cells, 5):
            reachable = set(sharded.reachable_shards(np.array([row])).tolist())
            demanded = set(
                sharded.shard_owner[
                    finder.candidate_rows(flat.cell_at(row))
                ].tolist()
            )
            assert demanded <= reachable

    def test_far_cells_reach_few_shards(self, sharded):
        all_rows = np.arange(sharded.num_cells)
        assert len(sharded.reachable_shards(all_rows)) == sharded.num_shards
        one = sharded.reachable_shards(np.array([0]))
        assert 1 <= len(one) < sharded.num_shards

    def test_empty_inputs(self, sharded):
        assert sharded.reachable_shards(np.empty(0, dtype=np.int64)).size == 0


class TestResidencyOracle:
    def test_record_rows_consulted(self, sharded):
        rows = np.arange(10)
        touched = sharded.record_rows_consulted(rows)
        assert touched == len(np.unique(sharded.shard_owner[rows]))
        assert sharded.queries == 1
        assert sharded.average_consulted() == float(touched)

    def test_query_engine_drives_the_oracle(self, flat, sharded, geometry):
        engine = RegionQueryEngine(sharded)
        pt = np.array([2.5, 2.5])
        engine.query_cell_batch(geometry.grid.cell_id_of(pt), pt[None, :])
        assert sharded.queries == 1
        assert sharded.shards_consulted >= 1

    def test_live_residency_stats_aggregates(self, flat):
        defrag = defragment(flat, capacity=200)
        sharded = ShardedFlatDictionary.from_defragmented(defrag, budget_bytes=8192)
        sharded.gather_subcells(np.arange(20))
        stats = live_residency_stats()
        assert stats["num_shards"] >= sharded.num_shards
        assert stats["shard_attaches"] >= sharded.shard_attaches
        assert stats["budget_bytes"] >= 8192
