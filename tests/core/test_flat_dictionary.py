"""Equivalence suite: the columnar flat dictionary vs the dict layout.

The flat cell dictionary is a pure re-encoding of
:class:`~repro.core.dictionary.CellDictionary` — same geometry, same
cells, same densities, same sub-cell centers, in the same lexicographic
order.  Every test here pins that equivalence down to the bit: builds,
lookups, gathers, region-query batches, merges, and the serialized byte
stream must all be *identical* between the two layouts, over randomized
(hypothesis) and seeded inputs.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.cells import CellGeometry
from repro.core.defragmentation import defragment
from repro.core.dictionary import (
    CellDictionary,
    FlatCellDictionary,
    csr_gather_indices,
    lex_keys,
)
from repro.core.region_query import RegionQueryEngine
from repro.core.serialization import (
    deserialize_dictionary,
    deserialize_flat_dictionary,
    serialize_dictionary,
)

SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

points_nd = arrays(
    np.float64,
    st.tuples(st.integers(1, 150), st.integers(1, 3)),
    elements=st.floats(-5, 5, allow_nan=False, width=32),
)


@pytest.fixture(scope="module")
def geometry():
    return CellGeometry(eps=0.5, dim=2, rho=0.05)


@pytest.fixture(scope="module")
def points():
    rng = np.random.default_rng(11)
    return rng.uniform(0, 4, (1500, 2))


@pytest.fixture(scope="module")
def dict_dictionary(points, geometry):
    return CellDictionary.from_points(points, geometry)


@pytest.fixture(scope="module")
def flat(points, geometry):
    return FlatCellDictionary.from_points(points, geometry)


def assert_flats_identical(a: FlatCellDictionary, b: FlatCellDictionary) -> None:
    assert np.array_equal(a.cell_ids, b.cell_ids)
    assert np.array_equal(a.cell_counts, b.cell_counts)
    assert np.array_equal(a.offsets, b.offsets)
    assert np.array_equal(a.sub_coords, b.sub_coords)
    assert np.array_equal(a.sub_counts, b.sub_counts)
    # Bit-identical, not merely close: both sides must run the same ops.
    assert np.array_equal(a.sub_centers, b.sub_centers)


class TestBuildEquivalence:
    def test_from_points_matches_dict_conversion(self, points, geometry):
        direct = FlatCellDictionary.from_points(points, geometry)
        via_dict = FlatCellDictionary.from_cell_dictionary(
            CellDictionary.from_points(points, geometry)
        )
        assert_flats_identical(direct, via_dict)

    def test_round_trip_through_dict(self, flat, dict_dictionary):
        back = flat.to_cell_dictionary()
        assert set(back.cells) == set(dict_dictionary.cells)
        for cell_id, summary in dict_dictionary.cells.items():
            other = back.cells[cell_id]
            assert other.count == summary.count
            assert np.array_equal(other.sub_coords, summary.sub_coords)
            assert np.array_equal(other.sub_counts, summary.sub_counts)

    def test_totals(self, flat, dict_dictionary, points):
        assert flat.num_cells == dict_dictionary.num_cells
        assert flat.num_subcells == dict_dictionary.num_subcells
        assert flat.num_points == dict_dictionary.num_points == len(points)
        assert len(flat) == len(dict_dictionary)

    def test_size_model_identical(self, flat, dict_dictionary):
        assert flat.size_model() == dict_dictionary.size_model()

    def test_empty(self, geometry):
        empty = FlatCellDictionary.from_points(np.empty((0, 2)), geometry)
        assert empty.num_cells == 0 and empty.num_points == 0
        assert empty.offsets.tolist() == [0]
        assert empty.find_rows(np.zeros((3, 2), dtype=np.int64)).tolist() == [-1] * 3

    def test_dim_mismatch_rejected(self, geometry):
        with pytest.raises(ValueError):
            FlatCellDictionary.from_points(np.zeros((5, 3)), geometry)

    @SETTINGS
    @given(pts=points_nd, rho=st.sampled_from([0.01, 0.1, 1.0]))
    def test_property_build_equivalence(self, pts, rho):
        geometry = CellGeometry(eps=0.7, dim=pts.shape[1], rho=rho)
        direct = FlatCellDictionary.from_points(pts, geometry)
        via_dict = FlatCellDictionary.from_cell_dictionary(
            CellDictionary.from_points(pts, geometry)
        )
        assert_flats_identical(direct, via_dict)


class TestLayoutInvariants:
    def test_rows_are_lexicographically_sorted(self, flat):
        as_tuples = [tuple(row) for row in flat.cell_ids.tolist()]
        assert as_tuples == sorted(as_tuples)

    def test_row_index_matches_dict_index_map(self, flat, dict_dictionary):
        # The load-bearing invariant: flat row == dense dict index, so
        # candidate rows double as cell-graph vertex ids.
        for cell_id, index in dict_dictionary.index_map.items():
            assert flat.row_of(cell_id) == index
            assert flat.cell_at(index) == cell_id

    def test_index_map_mapping_protocol(self, flat, dict_dictionary):
        index_map = flat.index_map
        assert len(index_map) == len(dict_dictionary.index_map)
        some = next(iter(dict_dictionary.index_map))
        assert some in index_map
        assert index_map.get(some) == dict_dictionary.index_map[some]
        assert index_map.get((10**9, 10**9)) is None
        with pytest.raises(KeyError):
            index_map[(10**9, 10**9)]

    def test_offsets_csr_shape(self, flat):
        assert flat.offsets[0] == 0
        assert flat.offsets[-1] == flat.num_subcells
        assert np.all(np.diff(flat.offsets) >= 1)

    def test_find_rows_hits_and_misses(self, flat):
        queries = np.concatenate(
            [flat.cell_ids[::3], np.full((2, flat.cell_ids.shape[1]), 10**6)]
        )
        rows = flat.find_rows(queries)
        assert np.array_equal(
            rows[: len(flat.cell_ids[::3])],
            np.arange(flat.num_cells)[::3],
        )
        assert rows[-2:].tolist() == [-1, -1]


class TestGatherEquivalence:
    def test_per_cell_centers_and_densities(self, flat, dict_dictionary):
        dict_dictionary.materialize_centers()
        for cell_id in dict_dictionary.cells:
            assert np.array_equal(
                flat.sub_cell_centers(cell_id),
                dict_dictionary.sub_cell_centers(cell_id),
            )
            assert np.array_equal(
                flat.densities(cell_id), dict_dictionary.densities(cell_id)
            )

    def test_gather_subcells_matches_slices(self, flat):
        rng = np.random.default_rng(5)
        rows = np.sort(rng.choice(flat.num_cells, size=7, replace=False))
        centers, densities, sizes = flat.gather_subcells(rows)
        expected_centers = np.concatenate(
            [flat.sub_cell_centers(flat.cell_at(int(r))) for r in rows]
        )
        expected_densities = np.concatenate(
            [flat.densities(flat.cell_at(int(r))) for r in rows]
        )
        assert np.array_equal(centers, expected_centers)
        assert np.array_equal(densities, expected_densities.astype(np.float64))
        assert sizes.tolist() == [
            int(flat.offsets[r + 1] - flat.offsets[r]) for r in rows
        ]

    def test_csr_gather_skips_empty_runs(self):
        starts = np.array([0, 4, 9], dtype=np.int64)
        sizes = np.array([2, 0, 3], dtype=np.int64)
        assert csr_gather_indices(starts, sizes).tolist() == [0, 1, 9, 10, 11]

    def test_lex_keys_searchsorted(self):
        ids = np.array([[0, 1], [0, 2], [3, 0]], dtype=np.int64)
        keys = lex_keys(ids)
        probe = lex_keys(np.array([[0, 2]], dtype=np.int64))
        assert np.searchsorted(keys, probe)[0] == 1


class TestMergeEquivalence:
    def test_merge_matches_global_build(self, geometry):
        rng = np.random.default_rng(2)
        pts = rng.uniform(0, 5, (3000, 2))
        # Split along cell boundaries (pseudo random partitioning's
        # guarantee) so the partial dictionaries never share a cell.
        owner = geometry.cell_ids(pts).sum(axis=1) % 4
        parts = [
            FlatCellDictionary.from_points(pts[owner == p], geometry)
            for p in range(4)
        ]
        merged = FlatCellDictionary.merge(parts)
        assert_flats_identical(merged, FlatCellDictionary.from_points(pts, geometry))

    def test_merge_overlap_rejected(self, geometry, points):
        flat = FlatCellDictionary.from_points(points, geometry)
        with pytest.raises(ValueError, match="share cells"):
            FlatCellDictionary.merge([flat, flat])

    def test_merge_empty_list_rejected(self):
        with pytest.raises(ValueError):
            FlatCellDictionary.merge([])


def _points_by_cell(points, geometry):
    groups: dict[tuple, list[int]] = {}
    for i, cid in enumerate(map(tuple, geometry.cell_ids(points).tolist())):
        groups.setdefault(cid, []).append(i)
    return groups


class TestRegionQueryEquivalence:
    @pytest.mark.parametrize("capacity", [None, 256])
    def test_batch_queries_bit_identical(
        self, points, geometry, dict_dictionary, flat, capacity
    ):
        if capacity is None:
            dict_engine = RegionQueryEngine(dict_dictionary)
            flat_engine = RegionQueryEngine(flat)
        else:
            dict_engine = RegionQueryEngine(
                defragment(dict_dictionary, capacity=capacity)
            )
            flat_engine = RegionQueryEngine(defragment(flat, capacity=capacity))
        for cell_id, indices in _points_by_cell(points, geometry).items():
            pts = points[indices]
            a = dict_engine.query_cell_batch(cell_id, pts)
            b = flat_engine.query_cell_batch(cell_id, pts)
            assert a.candidate_ids == b.candidate_ids
            assert np.array_equal(a.counts, b.counts)
            assert np.array_equal(a.touch, b.touch)
            assert b.candidate_rows is not None
            assert [
                tuple(c) for c in flat.cell_ids[b.candidate_rows].tolist()
            ] == b.candidate_ids

    @SETTINGS
    @given(pts=points_nd, rho=st.sampled_from([0.05, 0.5]))
    def test_property_batch_queries(self, pts, rho):
        geometry = CellGeometry(eps=0.8, dim=pts.shape[1], rho=rho)
        dict_engine = RegionQueryEngine(CellDictionary.from_points(pts, geometry))
        flat_engine = RegionQueryEngine(FlatCellDictionary.from_points(pts, geometry))
        for cell_id, indices in _points_by_cell(pts, geometry).items():
            group = pts[indices]
            a = dict_engine.query_cell_batch(cell_id, group)
            b = flat_engine.query_cell_batch(cell_id, group)
            assert a.candidate_ids == b.candidate_ids
            assert np.array_equal(a.counts, b.counts)
            assert np.array_equal(a.touch, b.touch)


class TestSerializationEquivalence:
    @pytest.mark.parametrize("rho", [0.01, 0.3, 1.0])
    def test_streams_byte_identical(self, points, rho):
        geometry = CellGeometry(eps=0.5, dim=2, rho=rho)
        dict_stream = serialize_dictionary(CellDictionary.from_points(points, geometry))
        flat_stream = serialize_dictionary(
            FlatCellDictionary.from_points(points, geometry)
        )
        assert dict_stream == flat_stream

    def test_flat_round_trip_exact(self, flat):
        back = deserialize_flat_dictionary(serialize_dictionary(flat))
        assert np.array_equal(back.cell_ids, flat.cell_ids)
        assert np.array_equal(back.cell_counts, flat.cell_counts)
        assert np.array_equal(back.offsets, flat.offsets)
        assert np.array_equal(back.sub_coords, flat.sub_coords)
        assert np.array_equal(back.sub_counts, flat.sub_counts)

    def test_cross_layout_round_trip(self, flat, dict_dictionary):
        stream = serialize_dictionary(dict_dictionary)
        from_dict_stream = deserialize_flat_dictionary(stream)
        as_dict = deserialize_dictionary(serialize_dictionary(flat))
        assert np.array_equal(from_dict_stream.cell_ids, flat.cell_ids)
        assert set(as_dict.cells) == set(dict_dictionary.cells)


class TestValidation:
    def test_unsorted_ids_rejected(self, geometry):
        with pytest.raises(ValueError, match="sorted"):
            FlatCellDictionary(
                geometry,
                np.array([[1, 0], [0, 0]], dtype=np.int64),
                np.array([1, 1]),
                np.array([0, 1, 2]),
                np.zeros((2, 2), dtype=np.uint16),
                np.array([1, 1]),
            )

    def test_offsets_length_rejected(self, geometry):
        with pytest.raises(ValueError):
            FlatCellDictionary(
                geometry,
                np.array([[0, 0]], dtype=np.int64),
                np.array([1]),
                np.array([0]),
                np.zeros((1, 2), dtype=np.uint16),
                np.array([1]),
            )
