"""Unit tests for repro.core.defragmentation (Sec 4.2.2, Defs 4.4/5.9)."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.cells import CellGeometry
from repro.core.defragmentation import defragment
from repro.core.dictionary import CellDictionary, FlatCellDictionary


@pytest.fixture()
def geometry():
    return CellGeometry(eps=0.5, dim=2, rho=0.1)


@pytest.fixture()
def dictionary(geometry):
    rng = np.random.default_rng(0)
    pts = rng.uniform(0, 5, (3000, 2))
    return CellDictionary.from_points(pts, geometry)


class TestDefragment:
    def test_pieces_cover_dictionary_disjointly(self, dictionary):
        defrag = defragment(dictionary, capacity=200)
        seen = set()
        for sub in defrag.sub_dicts:
            assert not (seen & sub.cells.keys())
            seen |= sub.cells.keys()
        assert seen == set(dictionary.cells)

    def test_capacity_respected(self, dictionary):
        capacity = 150
        defrag = defragment(dictionary, capacity=capacity)
        for sub in defrag.sub_dicts:
            # A leaf piece can exceed capacity only if it is one cell.
            assert sub.num_entries <= capacity or len(sub.cells) == 1

    def test_balanced_sizes(self, dictionary):
        defrag = defragment(dictionary, capacity=300)
        sizes = [sub.num_entries for sub in defrag.sub_dicts]
        assert max(sizes) <= 3 * max(min(sizes), 1)

    def test_huge_capacity_single_piece(self, dictionary):
        defrag = defragment(dictionary, capacity=10**9)
        assert defrag.num_sub_dicts == 1

    def test_empty_dictionary(self, geometry):
        empty = CellDictionary(geometry, {})
        defrag = defragment(empty, capacity=10)
        assert defrag.num_sub_dicts == 0

    def test_rejects_bad_capacity(self, dictionary):
        with pytest.raises(ValueError):
            defragment(dictionary, capacity=0)

    def test_mbr_covers_subcell_centers(self, dictionary):
        defrag = defragment(dictionary, capacity=200)
        for sub in defrag.sub_dicts:
            for cell_id in sub.cells:
                centers = dictionary.sub_cell_centers(cell_id)
                assert np.all(centers >= sub.mbr.lo - 1e-9)
                assert np.all(centers <= sub.mbr.hi + 1e-9)

    def test_geometric_contiguity(self, dictionary):
        # BSP cuts are axis-aligned hyperplanes, so two sub-dictionaries
        # never interleave: piece MBRs can overlap only on boundaries.
        defrag = defragment(dictionary, capacity=400)
        owners = {}
        for idx, sub in enumerate(defrag.sub_dicts):
            for cell_id in sub.cells:
                owners[cell_id] = idx
        assert len({owners[c] for c in dictionary.cells}) == defrag.num_sub_dicts


class TestOwnerLookup:
    def test_owner_of(self, dictionary):
        defrag = defragment(dictionary, capacity=200)
        for idx, sub in enumerate(defrag.sub_dicts):
            for cell_id in sub.cells:
                assert defrag.owner_of(cell_id) == idx


class TestSkipping:
    def test_relevant_subdicts_never_skip_neighbors(self, dictionary, geometry):
        # Soundness of Lemma 5.10: a sub-dictionary containing a sub-cell
        # center within eps of the query is always kept.
        defrag = defragment(dictionary, capacity=200)
        rng = np.random.default_rng(1)
        eps = geometry.eps
        for _ in range(20):
            query = rng.uniform(0, 5, 2)
            kept = set(defrag.relevant_sub_dicts(query, eps))
            for idx, sub in enumerate(defrag.sub_dicts):
                for cell_id in sub.cells:
                    centers = dictionary.sub_cell_centers(cell_id)
                    diff = centers - query
                    if np.any(np.einsum("ij,ij->i", diff, diff) <= eps * eps):
                        assert idx in kept

    def test_far_query_skips_everything(self, dictionary, geometry):
        defrag = defragment(dictionary, capacity=200)
        kept = defrag.relevant_sub_dicts(np.array([1e6, 1e6]), geometry.eps)
        assert kept == []

    def test_statistics_accumulate(self, dictionary, geometry):
        defrag = defragment(dictionary, capacity=200)
        assert defrag.average_consulted() == 0.0
        defrag.relevant_sub_dicts(np.array([2.5, 2.5]), geometry.eps)
        assert defrag.queries == 1
        assert defrag.average_consulted() >= 0

    def test_record_cells_consulted(self, dictionary):
        defrag = defragment(dictionary, capacity=200)
        some_cells = list(dictionary.cells)[:5]
        touched = defrag.record_cells_consulted(some_cells)
        assert 1 <= touched <= defrag.num_sub_dicts
        assert defrag.queries == 1


@pytest.fixture()
def flat(geometry):
    rng = np.random.default_rng(0)
    pts = rng.uniform(0, 5, (3000, 2))
    return FlatCellDictionary.from_points(pts, geometry)


class TestFlatEdgeCases:
    def test_capacity_below_largest_cell_still_covers(self, flat):
        # Every cell carries 1 + num_subcells entries, so capacity=1 is
        # below every cell's weight: each leaf bottoms out as a single
        # oversized cell yet the pieces still tile the dictionary.
        defrag = defragment(flat, capacity=1)
        assert defrag.num_sub_dicts == flat.num_cells
        covered = np.sort(np.concatenate([s.rows for s in defrag.sub_dicts]))
        np.testing.assert_array_equal(covered, np.arange(flat.num_cells))
        for sub in defrag.sub_dicts:
            assert sub.rows.size == 1
            assert sub.num_entries > 1  # oversized only because single-cell

    def test_empty_flat_dictionary(self, geometry):
        empty = FlatCellDictionary.from_points(np.empty((0, 2)), geometry)
        defrag = defragment(empty, capacity=10)
        assert defrag.num_sub_dicts == 0
        assert defrag.record_cells_consulted([]) == 0
        assert defrag.queries == 1

    def test_record_cells_consulted_ignores_absent_cells(self, flat):
        defrag = defragment(flat, capacity=200)
        present = flat.cell_at(0)
        absent = (10_000, 10_000)
        touched = defrag.record_cells_consulted([present, absent])
        # Only the present cell's owner counts; the absent id is dropped
        # rather than crashing the row lookup or polluting the tally.
        assert touched == 1
        assert defrag.queries == 1
        assert defrag.record_cells_consulted([absent, absent]) == 0
        assert defrag.queries == 2


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    points=arrays(
        np.float64,
        st.tuples(st.integers(1, 150), st.integers(1, 3)),
        elements=st.floats(-5, 5, allow_nan=False, width=32),
    ),
    capacity=st.integers(1, 500),
)
def test_dict_and_flat_defragment_identically(points, capacity):
    """Both layouts run the same BSP over the same sorted cell ids, so
    they must produce the same partition into sub-dictionaries."""
    geometry = CellGeometry(eps=0.5, dim=points.shape[1], rho=0.1)
    dict_pieces = {
        frozenset(sub.cells)
        for sub in defragment(
            CellDictionary.from_points(points, geometry), capacity=capacity
        ).sub_dicts
    }
    flat = FlatCellDictionary.from_points(points, geometry)
    flat_pieces = {
        frozenset(flat.cell_at(row) for row in sub.rows)
        for sub in defragment(flat, capacity=capacity).sub_dicts
    }
    assert flat_pieces == dict_pieces
