"""Unit tests for repro.core.dictionary (Def 4.2, Lemma 4.3)."""

import numpy as np
import pytest

from repro.core.cells import CellGeometry
from repro.core.dictionary import (
    CellDictionary,
    CellSummary,
    DictionarySizeModel,
    summarize_cell,
)


@pytest.fixture()
def geometry():
    return CellGeometry(eps=0.5, dim=2, rho=0.05)


@pytest.fixture()
def dictionary(geometry, uniform_points):
    return CellDictionary.from_points(uniform_points, geometry)


@pytest.fixture(scope="module")
def uniform_points():
    rng = np.random.default_rng(0)
    return rng.uniform(0, 3, (1000, 2))


class TestConstruction:
    def test_densities_sum_to_n(self, dictionary, uniform_points):
        assert dictionary.num_points == uniform_points.shape[0]

    def test_subcell_densities_sum_to_cell_density(self, dictionary):
        for summary in dictionary.cells.values():
            assert int(summary.sub_counts.sum()) == summary.count

    def test_subcells_at_most_points(self, dictionary):
        for summary in dictionary.cells.values():
            assert summary.num_subcells <= summary.count

    def test_dim_mismatch_rejected(self, geometry):
        with pytest.raises(ValueError):
            CellDictionary.from_points(np.zeros((5, 3)), geometry)

    def test_empty_points(self, geometry):
        d = CellDictionary.from_points(np.empty((0, 2)), geometry)
        assert d.num_cells == 0 and d.num_points == 0

    def test_contains_and_len(self, dictionary):
        assert len(dictionary) == dictionary.num_cells
        some_cell = next(iter(dictionary.cells))
        assert some_cell in dictionary


class TestSummarizeCell:
    def test_single_point(self, geometry):
        summary = summarize_cell(np.array([[0.1, 0.1]]), (0, 0), geometry)
        assert summary.count == 1 and summary.num_subcells == 1

    def test_coincident_points_share_subcell(self, geometry):
        pts = np.tile([0.12, 0.07], (5, 1))
        summary = summarize_cell(pts, (0, 0), geometry)
        assert summary.count == 5 and summary.num_subcells == 1

    def test_summary_validation(self):
        with pytest.raises(ValueError):
            CellSummary(
                count=3,
                sub_coords=np.zeros((1, 2), dtype=np.uint16),
                sub_counts=np.array([2]),
            )


class TestMerge:
    def test_merge_disjoint(self, geometry):
        a = CellDictionary.from_points(np.array([[0.1, 0.1]]), geometry)
        b = CellDictionary.from_points(np.array([[5.0, 5.0]]), geometry)
        merged = CellDictionary.merge([a, b])
        assert merged.num_cells == 2 and merged.num_points == 2

    def test_merge_overlapping_rejected(self, geometry):
        a = CellDictionary.from_points(np.array([[0.1, 0.1]]), geometry)
        b = CellDictionary.from_points(np.array([[0.2, 0.2]]), geometry)
        with pytest.raises(ValueError, match="share cells"):
            CellDictionary.merge([a, b])

    def test_merge_empty_list_rejected(self):
        with pytest.raises(ValueError):
            CellDictionary.merge([])

    def test_merge_equals_global_build(self, geometry, uniform_points):
        # Per-partition build + merge == one global build.
        from repro.core.partitioning import pseudo_random_partition
        from repro.core.rp_dbscan import _dictionary_from_partition

        partitions = pseudo_random_partition(uniform_points, geometry, 4, seed=1)
        partials = [
            _dictionary_from_partition(p, geometry)
            for p in partitions
            if p.num_points
        ]
        merged = CellDictionary.merge(partials)
        direct = CellDictionary.from_points(uniform_points, geometry)
        assert set(merged.cells) == set(direct.cells)
        for cell_id in merged.cells:
            assert merged.cells[cell_id].count == direct.cells[cell_id].count


class TestSizeModel:
    """Lemma 4.3: size = 32(|cell|+|subcell|) + 32 d |cell| + d(h-1)|subcell|."""

    def test_formula(self):
        model = DictionarySizeModel(num_cells=10, num_subcells=40, dim=3, h=8)
        assert model.density_bits == 32 * 50
        assert model.position_bits == 32 * 3 * 10 + 3 * 7 * 40
        assert model.total_bits == model.density_bits + model.position_bits

    def test_ratio_to_data(self):
        model = DictionarySizeModel(num_cells=1, num_subcells=1, dim=2, h=2)
        # data = 32 * 2 * 100 bits; dict = 32*2 + 32*2*1 + 2*1*1 bits
        assert model.ratio_to_data(100) == pytest.approx((64 + 64 + 2) / 6400)

    def test_ratio_shrinks_with_more_points_per_cell(self):
        geometry = CellGeometry(eps=1.0, dim=2, rho=0.05)
        rng = np.random.default_rng(5)
        small = CellDictionary.from_points(rng.uniform(0, 2, (200, 2)), geometry)
        dense = CellDictionary.from_points(rng.uniform(0, 2, (20_000, 2)), geometry)
        assert dense.size_model().ratio_to_data(20_000) < small.size_model().ratio_to_data(200)

    def test_rejects_nonpositive_points(self):
        model = DictionarySizeModel(1, 1, 2, 2)
        with pytest.raises(ValueError):
            model.ratio_to_data(0)


class TestQuerySupport:
    def test_centers_cached_and_correct(self, dictionary, geometry):
        cell_id = next(iter(dictionary.cells))
        first = dictionary.sub_cell_centers(cell_id)
        second = dictionary.sub_cell_centers(cell_id)
        assert first is second  # cache hit
        lo, hi = geometry.cell_box(cell_id)
        assert np.all(first >= lo) and np.all(first <= hi)

    def test_densities_dtype(self, dictionary):
        cell_id = next(iter(dictionary.cells))
        assert dictionary.densities(cell_id).dtype == np.float64

    def test_cell_ids_array_sorted(self, dictionary):
        ids = dictionary.cell_ids_array()
        assert ids.shape[1] == 2
        as_tuples = [tuple(row) for row in ids.tolist()]
        assert as_tuples == sorted(as_tuples)


class TestIncrementalUpdate:
    def test_update_equals_fresh_build(self, geometry):
        rng = np.random.default_rng(9)
        first = rng.uniform(0, 3, (600, 2))
        second = rng.uniform(0, 3, (400, 2))
        incremental = CellDictionary.from_points(first, geometry)
        incremental.add_points(second)
        fresh = CellDictionary.from_points(np.concatenate([first, second]), geometry)
        assert set(incremental.cells) == set(fresh.cells)
        for cell_id in fresh.cells:
            a, b = incremental.cells[cell_id], fresh.cells[cell_id]
            assert a.count == b.count
            got = {
                (tuple(c), int(n)) for c, n in zip(a.sub_coords.tolist(), a.sub_counts)
            }
            want = {
                (tuple(c), int(n)) for c, n in zip(b.sub_coords.tolist(), b.sub_counts)
            }
            assert got == want

    def test_update_invalidates_caches(self, geometry):
        rng = np.random.default_rng(10)
        d = CellDictionary.from_points(rng.uniform(0, 1, (50, 2)), geometry)
        cell_id = next(iter(d.cells))
        before = d.sub_cell_centers(cell_id)
        d.index_map  # build the index
        d.add_points(rng.uniform(0, 1, (50, 2)))
        after = d.sub_cell_centers(cell_id)
        assert after.shape[0] >= 1
        assert d.num_points == 100
        # Index rebuilt consistently.
        assert set(d.index_map) == set(d.cells)

    def test_update_empty_batch(self, geometry):
        rng = np.random.default_rng(11)
        d = CellDictionary.from_points(rng.uniform(0, 1, (50, 2)), geometry)
        d.add_points(np.empty((0, 2)))
        assert d.num_points == 50

    def test_update_dim_mismatch(self, geometry):
        d = CellDictionary.from_points(np.zeros((1, 2)), geometry)
        with pytest.raises(ValueError):
            d.add_points(np.zeros((3, 3)))

    def test_queries_after_update(self, geometry):
        from repro.core.region_query import RegionQueryEngine

        rng = np.random.default_rng(12)
        first = rng.normal([1, 1], 0.2, (300, 2))
        second = rng.normal([1, 1], 0.2, (300, 2))
        d = CellDictionary.from_points(first, geometry)
        d.add_points(second)
        engine = RegionQueryEngine(d)
        count, _ = engine.query_point(np.array([1.0, 1.0]))
        both = np.concatenate([first, second])
        diff = both - np.array([1.0, 1.0])
        exact = int(
            np.count_nonzero(np.einsum("ij,ij->i", diff, diff) <= geometry.eps**2)
        )
        # Sandwich bound still holds over the union.
        rho, eps = geometry.rho, geometry.eps
        inner = int(np.count_nonzero(
            np.einsum("ij,ij->i", diff, diff) <= ((1 - rho / 2) * eps) ** 2
        ))
        outer = int(np.count_nonzero(
            np.einsum("ij,ij->i", diff, diff) <= ((1 + rho / 2) * eps) ** 2
        ))
        assert inner <= count <= outer
