"""Tests for the per-phase accounting the efficiency figures consume."""

import numpy as np
import pytest

from repro import RPDBSCAN
from repro.core.rp_dbscan import (
    PHASE_CELL_GRAPH,
    PHASE_DICTIONARY,
    PHASE_LABEL,
    PHASE_MERGE,
    PHASE_PARTITION,
)
from repro.engine import Engine, PhaseSchedule


@pytest.fixture(scope="module")
def result(accounting_blobs):
    engine = Engine("serial")
    return RPDBSCAN(0.3, 10, num_partitions=6, engine=engine).fit(accounting_blobs)


@pytest.fixture(scope="module")
def accounting_blobs():
    rng = np.random.default_rng(21)
    return np.concatenate(
        [rng.normal([0, 0], 0.12, (500, 2)), rng.normal([3, 0], 0.12, (500, 2))]
    )


class TestCounters:
    def test_all_phases_timed(self, result):
        for phase in (
            PHASE_PARTITION,
            PHASE_DICTIONARY,
            PHASE_CELL_GRAPH,
            PHASE_MERGE,
            PHASE_LABEL,
        ):
            assert result.counters.phase_seconds.get(phase, 0.0) > 0.0, phase

    def test_task_stats_for_mapped_phases(self, result):
        # Phases I-2, II, III-2 run as engine tasks (one per partition).
        assert len(result.counters.task_times(PHASE_CELL_GRAPH)) == 6
        assert len(result.counters.task_times(PHASE_LABEL)) == 6
        assert 1 <= len(result.counters.task_times(PHASE_DICTIONARY)) <= 6

    def test_phase2_items_equal_points(self, result, accounting_blobs):
        assert (
            result.counters.items_processed(PHASE_CELL_GRAPH)
            == accounting_blobs.shape[0]
        )

    def test_merge_critical_path_bounded_by_phase_time(self, result):
        critical = result.merge_stats.critical_path_seconds()
        total_merge = result.counters.phase_seconds[PHASE_MERGE]
        assert 0.0 <= critical <= total_merge + 1e-6

    def test_breakdown_ordering_stable(self, result):
        keys = list(result.phase_breakdown())
        assert keys == [
            PHASE_PARTITION,
            PHASE_DICTIONARY,
            PHASE_CELL_GRAPH,
            PHASE_MERGE,
            PHASE_LABEL,
        ]


class TestScheduleFromResult:
    def test_phase_schedule_composes(self, result):
        counters = result.counters
        schedule = (
            PhaseSchedule()
            .add_divisible(counters.phase_seconds[PHASE_PARTITION])
            .add_parallel(counters.task_times(PHASE_DICTIONARY))
            .add_parallel(counters.task_times(PHASE_CELL_GRAPH))
            .add_constant(result.merge_stats.critical_path_seconds())
            .add_parallel(counters.task_times(PHASE_LABEL))
        )
        one = schedule.elapsed(1)
        many = schedule.elapsed(64)
        assert many <= one
        curve = schedule.speedups([1, 2, 4])
        assert curve[1] == pytest.approx(1.0)
        assert curve[4] >= curve[2] >= curve[1] - 1e-9
