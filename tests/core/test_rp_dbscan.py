"""Unit tests for the RPDBSCAN orchestrator (Algorithm 1)."""

import numpy as np
import pytest

from repro.core.rp_dbscan import (
    PHASE_CELL_GRAPH,
    PHASE_DICTIONARY,
    PHASE_LABEL,
    PHASES,
    RPDBSCAN,
)
from repro.engine import Engine


class TestBasicClustering:
    def test_two_blobs(self, two_blobs):
        result = RPDBSCAN(eps=0.3, min_pts=10, num_partitions=4).fit(two_blobs)
        assert result.n_clusters == 2
        assert result.noise_count == 0

    def test_blobs_with_noise(self, blobs_with_noise):
        result = RPDBSCAN(eps=0.25, min_pts=10, num_partitions=4).fit(
            blobs_with_noise
        )
        assert result.n_clusters == 3
        assert 0 < result.noise_count < 80 + 10

    def test_three_dimensional(self, three_d_blobs):
        result = RPDBSCAN(eps=0.5, min_pts=10, num_partitions=4).fit(three_d_blobs)
        assert result.n_clusters == 2

    def test_all_noise(self, uniform_square):
        result = RPDBSCAN(eps=0.01, min_pts=50).fit(uniform_square)
        assert result.n_clusters == 0
        assert result.noise_count == uniform_square.shape[0]

    def test_single_cluster_min_pts_one(self):
        pts = np.array([[0.0, 0.0], [0.05, 0.0], [0.0, 0.05]])
        result = RPDBSCAN(eps=0.2, min_pts=1).fit(pts)
        assert result.n_clusters == 1
        assert result.noise_count == 0

    def test_fit_predict(self, two_blobs):
        labels = RPDBSCAN(eps=0.3, min_pts=10).fit_predict(two_blobs)
        assert labels.shape == (two_blobs.shape[0],)

    def test_empty_input(self):
        result = RPDBSCAN(eps=0.3, min_pts=10).fit(np.empty((0, 2)))
        assert result.n_clusters == 0
        assert result.labels.shape == (0,)


class TestDeterminism:
    def test_same_seed_same_labels(self, blobs_with_noise):
        a = RPDBSCAN(eps=0.25, min_pts=10, seed=5).fit(blobs_with_noise)
        b = RPDBSCAN(eps=0.25, min_pts=10, seed=5).fit(blobs_with_noise)
        np.testing.assert_array_equal(a.labels, b.labels)

    def test_partition_count_invariance(self, two_blobs):
        # The clustering must not depend on k (Corollary 3.6's spirit).
        results = [
            RPDBSCAN(eps=0.3, min_pts=10, num_partitions=k).fit(two_blobs)
            for k in (1, 2, 4, 8)
        ]
        for r in results[1:]:
            assert r.n_clusters == results[0].n_clusters
            assert r.noise_count == results[0].noise_count

    def test_seed_invariance_of_clustering(self, blobs_with_noise):
        a = RPDBSCAN(eps=0.25, min_pts=10, seed=1).fit(blobs_with_noise)
        b = RPDBSCAN(eps=0.25, min_pts=10, seed=99).fit(blobs_with_noise)
        assert a.n_clusters == b.n_clusters
        assert a.noise_count == b.noise_count
        np.testing.assert_array_equal(a.core_mask, b.core_mask)


class TestResultObject:
    def test_phase_breakdown_complete(self, two_blobs):
        result = RPDBSCAN(eps=0.3, min_pts=10).fit(two_blobs)
        breakdown = result.phase_breakdown()
        assert list(breakdown) == list(PHASES)
        assert sum(breakdown.values()) == pytest.approx(1.0)

    def test_points_processed_equals_n(self, two_blobs):
        # Fig 14's invariant: RP-DBSCAN never duplicates a point.
        result = RPDBSCAN(eps=0.3, min_pts=10, num_partitions=4).fit(two_blobs)
        assert result.points_processed == two_blobs.shape[0]

    def test_partition_sizes_sum_to_n(self, two_blobs):
        result = RPDBSCAN(eps=0.3, min_pts=10, num_partitions=4).fit(two_blobs)
        assert sum(result.partition_sizes) == two_blobs.shape[0]

    def test_merge_stats_present(self, two_blobs):
        result = RPDBSCAN(eps=0.3, min_pts=10, num_partitions=4).fit(two_blobs)
        assert len(result.merge_stats.edges_per_round) >= 1

    def test_dictionary_model(self, two_blobs):
        result = RPDBSCAN(eps=0.3, min_pts=10).fit(two_blobs)
        assert result.dictionary_model.total_bits > 0

    def test_core_mask_core_points_labeled(self, blobs_with_noise):
        result = RPDBSCAN(eps=0.25, min_pts=10).fit(blobs_with_noise)
        assert np.all(result.labels[result.core_mask] >= 0)

    def test_global_graph_exposed(self, two_blobs):
        result = RPDBSCAN(eps=0.3, min_pts=10).fit(two_blobs)
        assert result.global_graph is not None
        assert result.global_graph.is_global()


class TestConfigurations:
    def test_process_engine(self, two_blobs):
        engine = Engine("process", num_workers=2)
        result = RPDBSCAN(eps=0.3, min_pts=10, num_partitions=4, engine=engine).fit(
            two_blobs
        )
        serial = RPDBSCAN(eps=0.3, min_pts=10, num_partitions=4).fit(two_blobs)
        np.testing.assert_array_equal(result.labels, serial.labels)

    def test_kdtree_strategy(self, two_blobs):
        result = RPDBSCAN(
            eps=0.3, min_pts=10, candidate_strategy="kdtree"
        ).fit(two_blobs)
        serial = RPDBSCAN(eps=0.3, min_pts=10).fit(two_blobs)
        np.testing.assert_array_equal(result.labels, serial.labels)

    def test_defragmented_dictionary(self, two_blobs):
        result = RPDBSCAN(
            eps=0.3, min_pts=10, defragment_capacity=64
        ).fit(two_blobs)
        plain = RPDBSCAN(eps=0.3, min_pts=10).fit(two_blobs)
        np.testing.assert_array_equal(result.labels, plain.labels)
        assert result.subdict_stats is not None
        num_subdicts, avg_consulted = result.subdict_stats
        assert num_subdicts > 1
        assert avg_consulted >= 1.0

    def test_shuffle_partitioning(self, two_blobs):
        result = RPDBSCAN(
            eps=0.3, min_pts=10, partition_method="shuffle"
        ).fit(two_blobs)
        assert result.n_clusters == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            RPDBSCAN(eps=0.0, min_pts=10)
        with pytest.raises(ValueError):
            RPDBSCAN(eps=1.0, min_pts=0)
        with pytest.raises(ValueError):
            RPDBSCAN(eps=1.0, min_pts=5, num_partitions=0)
        with pytest.raises(ValueError):
            RPDBSCAN(eps=1.0, min_pts=5).fit(np.zeros(7))


class TestRepeatedFits:
    """Regression: counters must not leak across fit() calls."""

    def test_second_fit_reports_only_its_own_tasks(self, two_blobs):
        model = RPDBSCAN(eps=0.3, min_pts=10, num_partitions=4)
        first = model.fit(two_blobs)
        second = model.fit(two_blobs)
        # Before the per-fit snapshot, the second result counted the
        # first run's tasks too (8 tasks, 2x points, doubled times).
        assert len(first.counters.task_times(PHASE_CELL_GRAPH)) == 4
        assert len(second.counters.task_times(PHASE_CELL_GRAPH)) == 4
        assert first.points_processed == two_blobs.shape[0]
        assert second.points_processed == two_blobs.shape[0]

    def test_breakdown_fractions_per_fit(self, two_blobs):
        model = RPDBSCAN(eps=0.3, min_pts=10, num_partitions=4)
        model.fit(two_blobs)
        second = model.fit(two_blobs)
        breakdown = second.phase_breakdown()
        assert sum(breakdown.values()) == pytest.approx(1.0)
        # Each phase's per-fit seconds must be bounded by the engine's
        # lifetime accumulation over two fits.
        lifetime = model.engine.counters
        for phase, seconds in second.counters.phase_seconds.items():
            assert seconds <= lifetime.phase_seconds[phase] + 1e-9

    def test_engine_lifetime_counters_still_accumulate(self, two_blobs):
        engine = Engine("serial")
        model = RPDBSCAN(eps=0.3, min_pts=10, num_partitions=4, engine=engine)
        model.fit(two_blobs)
        model.fit(two_blobs)
        # The shared engine keeps the full history...
        assert len(engine.counters.task_times(PHASE_CELL_GRAPH)) == 8
        # ...while each result got an independent snapshot object.
        assert engine.counters is not model.fit(two_blobs).counters

    def test_load_imbalance_independent_across_fits(self, two_blobs):
        model = RPDBSCAN(eps=0.3, min_pts=10, num_partitions=4)
        first = model.fit(two_blobs)
        second = model.fit(two_blobs)
        assert first.load_imbalance >= 1.0
        assert second.load_imbalance >= 1.0
        assert first.counters.phase_tasks is not second.counters.phase_tasks


class TestPersistentProcessEngine:
    """The paper's executor model: one pool, broadcasts shipped once."""

    def test_serial_and_process_agree_on_labels_and_cores(self, blobs_with_noise):
        serial = RPDBSCAN(eps=0.25, min_pts=10, num_partitions=4, seed=3).fit(
            blobs_with_noise
        )
        with Engine("process", num_workers=2) as engine:
            process = RPDBSCAN(
                eps=0.25, min_pts=10, num_partitions=4, seed=3, engine=engine
            ).fit(blobs_with_noise)
        np.testing.assert_array_equal(serial.labels, process.labels)
        np.testing.assert_array_equal(serial.core_mask, process.core_mask)
        assert serial.n_clusters == process.n_clusters

    def test_one_pool_across_phases_and_fits(self, two_blobs):
        with Engine("process", num_workers=2) as engine:
            model = RPDBSCAN(eps=0.3, min_pts=10, num_partitions=4, engine=engine)
            first = model.fit(two_blobs)
            second = model.fit(two_blobs)
            assert engine.pools_created == 1
            # Worker PIDs are stable across the mapped phases of both
            # fits: at most num_workers distinct PIDs, never the driver.
            pids = set()
            for counters in (first.counters, second.counters):
                for phase in (PHASE_DICTIONARY, PHASE_CELL_GRAPH, PHASE_LABEL):
                    pids |= {t.worker for t in counters.phase_tasks.get(phase, [])}
            import os

            assert len(pids) <= 2
            assert os.getpid() not in pids

    def test_each_distinct_broadcast_ships_once(self, two_blobs):
        with Engine("process", num_workers=2) as engine:
            model = RPDBSCAN(eps=0.3, min_pts=10, num_partitions=4, engine=engine)
            model.fit(two_blobs)
            # One fit broadcasts three distinct values: the geometry
            # (I-2), the query context (II), the labeling context (III-2).
            assert engine.broadcast_ships == 3
            model.fit(two_blobs)
            assert engine.broadcast_ships == 6

    def test_setup_bucket_populated_and_excluded_from_phases(self, two_blobs):
        with Engine("process", num_workers=2) as engine:
            result = RPDBSCAN(
                eps=0.3, min_pts=10, num_partitions=4, engine=engine
            ).fit(two_blobs)
            assert result.setup_seconds > 0.0
            assert "pool_startup" in result.counters.setup_seconds
            assert "warmup" in result.counters.setup_seconds
            assert set(result.counters.phase_seconds) == set(PHASES)
            assert result.worker_imbalance >= 1.0
