"""Unit tests for the RPDBSCAN orchestrator (Algorithm 1)."""

import numpy as np
import pytest

from repro.core.rp_dbscan import PHASES, RPDBSCAN
from repro.engine import Engine


class TestBasicClustering:
    def test_two_blobs(self, two_blobs):
        result = RPDBSCAN(eps=0.3, min_pts=10, num_partitions=4).fit(two_blobs)
        assert result.n_clusters == 2
        assert result.noise_count == 0

    def test_blobs_with_noise(self, blobs_with_noise):
        result = RPDBSCAN(eps=0.25, min_pts=10, num_partitions=4).fit(
            blobs_with_noise
        )
        assert result.n_clusters == 3
        assert 0 < result.noise_count < 80 + 10

    def test_three_dimensional(self, three_d_blobs):
        result = RPDBSCAN(eps=0.5, min_pts=10, num_partitions=4).fit(three_d_blobs)
        assert result.n_clusters == 2

    def test_all_noise(self, uniform_square):
        result = RPDBSCAN(eps=0.01, min_pts=50).fit(uniform_square)
        assert result.n_clusters == 0
        assert result.noise_count == uniform_square.shape[0]

    def test_single_cluster_min_pts_one(self):
        pts = np.array([[0.0, 0.0], [0.05, 0.0], [0.0, 0.05]])
        result = RPDBSCAN(eps=0.2, min_pts=1).fit(pts)
        assert result.n_clusters == 1
        assert result.noise_count == 0

    def test_fit_predict(self, two_blobs):
        labels = RPDBSCAN(eps=0.3, min_pts=10).fit_predict(two_blobs)
        assert labels.shape == (two_blobs.shape[0],)

    def test_empty_input(self):
        result = RPDBSCAN(eps=0.3, min_pts=10).fit(np.empty((0, 2)))
        assert result.n_clusters == 0
        assert result.labels.shape == (0,)


class TestDeterminism:
    def test_same_seed_same_labels(self, blobs_with_noise):
        a = RPDBSCAN(eps=0.25, min_pts=10, seed=5).fit(blobs_with_noise)
        b = RPDBSCAN(eps=0.25, min_pts=10, seed=5).fit(blobs_with_noise)
        np.testing.assert_array_equal(a.labels, b.labels)

    def test_partition_count_invariance(self, two_blobs):
        # The clustering must not depend on k (Corollary 3.6's spirit).
        results = [
            RPDBSCAN(eps=0.3, min_pts=10, num_partitions=k).fit(two_blobs)
            for k in (1, 2, 4, 8)
        ]
        for r in results[1:]:
            assert r.n_clusters == results[0].n_clusters
            assert r.noise_count == results[0].noise_count

    def test_seed_invariance_of_clustering(self, blobs_with_noise):
        a = RPDBSCAN(eps=0.25, min_pts=10, seed=1).fit(blobs_with_noise)
        b = RPDBSCAN(eps=0.25, min_pts=10, seed=99).fit(blobs_with_noise)
        assert a.n_clusters == b.n_clusters
        assert a.noise_count == b.noise_count
        np.testing.assert_array_equal(a.core_mask, b.core_mask)


class TestResultObject:
    def test_phase_breakdown_complete(self, two_blobs):
        result = RPDBSCAN(eps=0.3, min_pts=10).fit(two_blobs)
        breakdown = result.phase_breakdown()
        assert list(breakdown) == list(PHASES)
        assert sum(breakdown.values()) == pytest.approx(1.0)

    def test_points_processed_equals_n(self, two_blobs):
        # Fig 14's invariant: RP-DBSCAN never duplicates a point.
        result = RPDBSCAN(eps=0.3, min_pts=10, num_partitions=4).fit(two_blobs)
        assert result.points_processed == two_blobs.shape[0]

    def test_partition_sizes_sum_to_n(self, two_blobs):
        result = RPDBSCAN(eps=0.3, min_pts=10, num_partitions=4).fit(two_blobs)
        assert sum(result.partition_sizes) == two_blobs.shape[0]

    def test_merge_stats_present(self, two_blobs):
        result = RPDBSCAN(eps=0.3, min_pts=10, num_partitions=4).fit(two_blobs)
        assert len(result.merge_stats.edges_per_round) >= 1

    def test_dictionary_model(self, two_blobs):
        result = RPDBSCAN(eps=0.3, min_pts=10).fit(two_blobs)
        assert result.dictionary_model.total_bits > 0

    def test_core_mask_core_points_labeled(self, blobs_with_noise):
        result = RPDBSCAN(eps=0.25, min_pts=10).fit(blobs_with_noise)
        assert np.all(result.labels[result.core_mask] >= 0)

    def test_global_graph_exposed(self, two_blobs):
        result = RPDBSCAN(eps=0.3, min_pts=10).fit(two_blobs)
        assert result.global_graph is not None
        assert result.global_graph.is_global()


class TestConfigurations:
    def test_process_engine(self, two_blobs):
        engine = Engine("process", num_workers=2)
        result = RPDBSCAN(eps=0.3, min_pts=10, num_partitions=4, engine=engine).fit(
            two_blobs
        )
        serial = RPDBSCAN(eps=0.3, min_pts=10, num_partitions=4).fit(two_blobs)
        np.testing.assert_array_equal(result.labels, serial.labels)

    def test_kdtree_strategy(self, two_blobs):
        result = RPDBSCAN(
            eps=0.3, min_pts=10, candidate_strategy="kdtree"
        ).fit(two_blobs)
        serial = RPDBSCAN(eps=0.3, min_pts=10).fit(two_blobs)
        np.testing.assert_array_equal(result.labels, serial.labels)

    def test_defragmented_dictionary(self, two_blobs):
        result = RPDBSCAN(
            eps=0.3, min_pts=10, defragment_capacity=64
        ).fit(two_blobs)
        plain = RPDBSCAN(eps=0.3, min_pts=10).fit(two_blobs)
        np.testing.assert_array_equal(result.labels, plain.labels)
        assert result.subdict_stats is not None
        num_subdicts, avg_consulted = result.subdict_stats
        assert num_subdicts > 1
        assert avg_consulted >= 1.0

    def test_shuffle_partitioning(self, two_blobs):
        result = RPDBSCAN(
            eps=0.3, min_pts=10, partition_method="shuffle"
        ).fit(two_blobs)
        assert result.n_clusters == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            RPDBSCAN(eps=0.0, min_pts=10)
        with pytest.raises(ValueError):
            RPDBSCAN(eps=1.0, min_pts=0)
        with pytest.raises(ValueError):
            RPDBSCAN(eps=1.0, min_pts=5, num_partitions=0)
        with pytest.raises(ValueError):
            RPDBSCAN(eps=1.0, min_pts=5).fit(np.zeros(7))
