"""The model plane: ClusterState, incremental ingest, RPST persistence.

The load-bearing guarantee is the **bit-identity contract** of
:meth:`ClusterState.ingest` (see the module docstring of
``repro/core/cluster_state.py``): after ingesting new points, every
canonical field of the state — dictionary arrays, vertex statuses, cell
labels, per-point labels, core flags — equals a from-scratch fit on the
concatenated points.  The contract is checked across dictionary layouts,
kernels, broadcast channels, partition fan-outs, sequential ingests, and
under seeded chaos injected into the refit's engine phases.

Edge *sets* and union-find internals are exempt: the reduced edge list
and the spanning forest are representation, not meaning — connectivity
and labels are what the contract freezes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import RPDBSCAN, CellGeometry, ClusterState
from repro.core.cluster_state import (
    PHASE_INGEST_GRAPH,
    PHASE_INGEST_LABEL,
    PHASE_INGEST_MERGE,
)
from repro.core.prediction import ClusterModel
from repro.core.serialization import (
    deserialize_cluster_state,
    load_cluster_state,
    save_cluster_state,
    serialize_cluster_state,
)
from repro.engine import Engine, FaultInjector, FaultPolicy
from repro.obs.report import ingest_ledger_rows
from repro.obs.spans import Tracer

EPS = 0.3
MIN_PTS = 10

INGEST_PHASES = (PHASE_INGEST_GRAPH, PHASE_INGEST_MERGE, PHASE_INGEST_LABEL)


def _blobs(seed: int, n: int) -> np.ndarray:
    """Two separated blobs plus sparse background noise."""
    rng = np.random.default_rng(seed)
    per = n // 3
    return np.concatenate(
        [
            rng.normal([0.0, 0.0], 0.1, (per, 2)),
            rng.normal([3.0, 0.0], 0.1, (per, 2)),
            rng.uniform(-1.0, 4.0, (n - 2 * per, 2)),
        ]
    )


def _fit(pts, *, engine=None, **kw):
    kw.setdefault("num_partitions", 4)
    kw.setdefault("kernel", "numpy")
    return RPDBSCAN(EPS, MIN_PTS, engine=engine, **kw).fit(pts)


def assert_states_identical(got: ClusterState, want: ClusterState) -> None:
    """The canonical (meaning-carrying) fields must be bit-identical."""
    np.testing.assert_array_equal(
        got.dictionary.cell_ids, want.dictionary.cell_ids
    )
    np.testing.assert_array_equal(
        got.dictionary.cell_counts, want.dictionary.cell_counts
    )
    np.testing.assert_array_equal(
        got.dictionary.offsets, want.dictionary.offsets
    )
    np.testing.assert_array_equal(
        got.dictionary.sub_coords, want.dictionary.sub_coords
    )
    np.testing.assert_array_equal(
        got.dictionary.sub_counts, want.dictionary.sub_counts
    )
    np.testing.assert_array_equal(got.graph.status, want.graph.status)
    np.testing.assert_array_equal(got.cell_labels, want.cell_labels)
    np.testing.assert_array_equal(got.points, want.points)
    np.testing.assert_array_equal(got.point_cell_rows, want.point_cell_rows)
    np.testing.assert_array_equal(got.labels, want.labels)
    np.testing.assert_array_equal(got.core_mask, want.core_mask)


def _ingest_chaos_injector() -> FaultInjector:
    """A seed whose only relevant fault is an exception at attempt 0 of
    the dirty Phase II re-run, with every ingest-phase retry clean —
    recovery inside the refit is then guaranteed in one round."""
    for seed in range(10_000):
        inj = FaultInjector(exception_prob=0.05, seed=seed)
        if not inj.decide(PHASE_INGEST_GRAPH, 0, 0).exception:
            continue
        clean = all(
            not inj.decide(phase, t, a).any
            for phase in INGEST_PHASES
            for t in range(8)
            for a in (1, 2, 3)
        )
        if clean:
            return inj
    pytest.fail("no suitable ingest-chaos seed found")


# ----------------------------------------------------------------------
# Fit produces a state
# ----------------------------------------------------------------------


class TestFitState:
    def test_fit_attaches_valid_state(self):
        pts = _blobs(0, 300)
        result = _fit(pts)
        state = result.state
        assert state is not None
        state.validate()
        assert state.num_points == pts.shape[0]
        assert state.num_cells == state.dictionary.num_cells
        assert state.eps == EPS
        assert state.min_pts == MIN_PTS
        np.testing.assert_array_equal(state.labels, result.labels)
        np.testing.assert_array_equal(state.core_mask, result.core_mask)
        assert state.n_clusters == result.n_clusters

    def test_point_cell_rows_match_geometry(self):
        pts = _blobs(1, 240)
        state = _fit(pts).state
        rows = state.dictionary.find_rows(state.geometry.cell_ids(pts))
        np.testing.assert_array_equal(state.point_cell_rows, rows)

    def test_cell_labels_agree_with_point_labels(self):
        pts = _blobs(2, 300)
        state = _fit(pts).state
        core_rows = state.point_cell_rows[state.core_mask]
        np.testing.assert_array_equal(
            state.cell_labels[core_rows], state.labels[state.core_mask]
        )

    def test_dict_layout_produces_identical_state(self):
        pts = _blobs(3, 300)
        flat = _fit(pts, dictionary_layout="flat", graph_layout="flat").state
        dict_ = _fit(pts, dictionary_layout="dict", graph_layout="dict").state
        assert_states_identical(flat, dict_)

    def test_empty_fit_has_empty_state(self):
        state = _fit(np.empty((0, 2))).state
        assert state is not None
        state.validate()
        assert state.num_points == 0
        assert state.num_cells == 0
        assert state.n_clusters == 0


# ----------------------------------------------------------------------
# Ingest bit-identity
# ----------------------------------------------------------------------


class TestIngestBitIdentity:
    @pytest.mark.parametrize("layout", ["flat", "dict"])
    @pytest.mark.parametrize("kernel", ["numpy", "python"])
    def test_matches_from_scratch_fit(self, layout, kernel):
        pts = _blobs(10, 450)
        a, b = pts[:300], pts[300:]
        state = _fit(
            a, dictionary_layout=layout, graph_layout=layout, kernel=kernel
        ).state
        report = state.ingest(b)
        want = _fit(
            pts, dictionary_layout=layout, graph_layout=layout, kernel=kernel
        ).state
        assert_states_identical(state, want)
        assert report.num_new_points == b.shape[0]
        assert report.n_clusters == want.n_clusters

    @pytest.mark.parametrize("channel", ["shm", "pickle"])
    def test_matches_under_process_engine(self, channel):
        pts = _blobs(11, 450)
        a, b = pts[:300], pts[300:]
        with Engine(
            "process", num_workers=2, broadcast_channel=channel
        ) as engine:
            state = _fit(a, engine=engine).state
            state.ingest(b, engine=engine)
        assert_states_identical(state, _fit(pts).state)

    def test_partition_fanout_is_irrelevant(self):
        # Partition invariance: regrouping cells into a different number
        # of refit tasks cannot reach the per-cell arithmetic.
        pts = _blobs(12, 450)
        a, b = pts[:300], pts[300:]
        state = _fit(a, num_partitions=7).state
        state.ingest(b, num_tasks=3)
        assert_states_identical(state, _fit(pts, num_partitions=2).state)

    def test_sequential_ingests(self):
        pts = _blobs(13, 600)
        state = _fit(pts[:200]).state
        state.ingest(pts[200:350])
        state.ingest(pts[350:520])
        state.ingest(pts[520:])
        assert_states_identical(state, _fit(pts).state)

    def test_ingest_into_empty_state(self):
        pts = _blobs(14, 300)
        state = ClusterState.empty(CellGeometry(EPS, 2), MIN_PTS, num_tasks=4)
        state.ingest(pts)
        assert_states_identical(state, _fit(pts).state)

    def test_ingest_into_empty_fit_result(self):
        pts = _blobs(15, 300)
        state = _fit(np.empty((0, 2))).state
        state.ingest(pts)
        assert_states_identical(state, _fit(pts).state)

    def test_ingest_far_away_points(self):
        # New points sharing no candidate cells with the old world: the
        # clean half must be retained verbatim.
        a = _blobs(16, 300)
        b = _blobs(17, 150) + np.array([100.0, 100.0])
        state = _fit(a).state
        report = state.ingest(b)
        assert_states_identical(state, _fit(np.concatenate([a, b])).state)
        assert report.edges_retained > 0

    def test_ingest_duplicates_of_existing_points(self):
        a = _blobs(18, 300)
        state = _fit(a).state
        state.ingest(a[:50])
        assert_states_identical(state, _fit(np.concatenate([a, a[:50]])).state)

    def test_noise_promotes_to_cluster(self):
        # A sparse region densifies past min_pts only after the ingest.
        rng = np.random.default_rng(19)
        sparse = rng.normal([10.0, 10.0], 0.05, (4, 2))
        a = np.concatenate([_blobs(20, 200), sparse])
        state = _fit(a).state
        assert (state.labels[-4:] == -1).all()
        dense = rng.normal([10.0, 10.0], 0.05, (40, 2))
        state.ingest(dense)
        assert_states_identical(state, _fit(np.concatenate([a, dense])).state)
        assert (state.labels[-40:] >= 0).all()

    def test_chaos_mid_refit_recovers_bit_identical(self):
        pts = _blobs(21, 450)
        a, b = pts[:300], pts[300:]
        state = _fit(a).state
        policy = FaultPolicy(
            max_retries=3,
            backoff_base_s=0.0,
            injector=_ingest_chaos_injector(),
        )
        with Engine("serial", fault_policy=policy) as engine:
            state.ingest(b, engine=engine)
        assert_states_identical(state, _fit(pts).state)

    def test_chaos_mid_refit_process_engine(self):
        pts = _blobs(22, 450)
        a, b = pts[:300], pts[300:]
        state = _fit(a).state
        policy = FaultPolicy(
            max_retries=3,
            backoff_base_s=0.0,
            injector=_ingest_chaos_injector(),
        )
        with Engine(
            "process",
            num_workers=2,
            fault_policy=policy,
            broadcast_channel="shm",
        ) as engine:
            state.ingest(b, engine=engine)
        assert_states_identical(state, _fit(pts).state)


# ----------------------------------------------------------------------
# Ingest bookkeeping, validation, observability
# ----------------------------------------------------------------------


class TestIngestReport:
    def test_empty_ingest_is_a_noop(self):
        state = _fit(_blobs(30, 300)).state
        before = serialize_cluster_state(state)
        report = state.ingest(np.empty((0, 2)))
        assert report.num_new_points == 0
        assert report.cells_dirty == 0
        assert serialize_cluster_state(state) == before

    def test_report_counts_are_consistent(self):
        pts = _blobs(31, 450)
        state = _fit(pts[:300]).state
        cells_before = state.num_cells
        report = state.ingest(pts[300:])
        assert report.cells_total == state.num_cells
        assert report.cells_new == state.num_cells - cells_before
        assert 0 < report.cells_dirty <= report.cells_total
        assert report.edges_recomputed >= 0
        assert report.edges_retained >= 0
        assert report.total_seconds >= report.splice_seconds >= 0.0
        assert report.n_clusters == state.n_clusters

    def test_rejects_bad_inputs(self):
        state = _fit(_blobs(32, 200)).state
        with pytest.raises(ValueError, match="2-d"):
            state.ingest(np.zeros(5))
        with pytest.raises(ValueError, match="dim"):
            state.ingest(np.zeros((5, 3)))
        with pytest.raises(ValueError, match="finite"):
            state.ingest(np.array([[np.nan, 0.0]]))

    def test_ingest_span_feeds_the_ledger(self):
        pts = _blobs(33, 450)
        state = _fit(pts[:300]).state
        tracer = Tracer()
        with Engine("serial", tracer=tracer) as engine:
            report = state.ingest(pts[300:], engine=engine)
        rows = ingest_ledger_rows(tracer.spans)
        assert len(rows) == 1
        assert rows[0][0] == report.num_new_points
        assert rows[0][1] == f"{report.cells_dirty}/{report.cells_total}"
        assert rows[0][2] == report.cells_new
        # The refit's engine phases are bucketed under ingest names, so a
        # shared engine's fit-phase breakdown stays unpolluted.
        phases = {s.name for s in tracer.spans if s.kind == "phase"}
        assert PHASE_INGEST_GRAPH in phases
        assert PHASE_INGEST_LABEL in phases


# ----------------------------------------------------------------------
# RPST persistence
# ----------------------------------------------------------------------


class TestRPSTRoundTrip:
    def test_byte_stable_round_trip(self):
        state = _fit(_blobs(40, 300)).state
        blob = serialize_cluster_state(state)
        again = serialize_cluster_state(deserialize_cluster_state(blob))
        assert blob == again

    def test_round_trip_preserves_everything(self):
        state = _fit(_blobs(41, 300)).state
        loaded = deserialize_cluster_state(serialize_cluster_state(state))
        assert_states_identical(loaded, state)
        assert loaded.min_pts == state.min_pts
        assert loaded.kernel == state.kernel
        assert loaded.candidate_strategy == state.candidate_strategy
        assert loaded.merge_mode == state.merge_mode
        assert loaded.num_tasks == state.num_tasks
        assert loaded.geometry.eps == state.geometry.eps
        assert loaded.geometry.dim == state.geometry.dim

    def test_file_round_trip_and_predict(self, tmp_path):
        pts = _blobs(42, 300)
        state = _fit(pts).state
        path = tmp_path / "model.rpst"
        save_cluster_state(state, path)
        loaded = load_cluster_state(path)
        want = ClusterModel.from_state(state).predict(pts)
        got = ClusterModel.from_state(loaded).predict(pts)
        np.testing.assert_array_equal(got, want)

    def test_save_is_deterministic_on_disk(self, tmp_path):
        state = _fit(_blobs(43, 240)).state
        save_cluster_state(state, tmp_path / "a.rpst")
        save_cluster_state(state, tmp_path / "b.rpst")
        assert (tmp_path / "a.rpst").read_bytes() == (
            tmp_path / "b.rpst"
        ).read_bytes()

    def test_loaded_state_still_ingests_bit_identical(self):
        pts = _blobs(44, 450)
        a, b = pts[:300], pts[300:]
        state = deserialize_cluster_state(
            serialize_cluster_state(_fit(a).state)
        )
        state.ingest(b)
        assert_states_identical(state, _fit(pts).state)

    def test_empty_state_round_trips(self):
        state = ClusterState.empty(CellGeometry(EPS, 3), MIN_PTS)
        loaded = deserialize_cluster_state(serialize_cluster_state(state))
        assert loaded.num_points == 0
        assert loaded.num_cells == 0
        assert loaded.geometry.dim == 3

    def test_rejects_foreign_streams(self):
        with pytest.raises(ValueError, match="model-state"):
            deserialize_cluster_state(b"NOPE" + b"\x00" * 64)
        state = _fit(_blobs(45, 120)).state
        blob = bytearray(serialize_cluster_state(state))
        blob[4] = 0xFF  # version bytes
        blob[5] = 0xFF
        with pytest.raises(ValueError, match="version"):
            deserialize_cluster_state(bytes(blob))
