"""Unit tests for ClusterModel.predict."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import RPDBSCAN
from repro.core.prediction import ClusterModel
from repro.engine.shm import (
    create_segment,
    destroy_segment,
    export_broadcast,
    import_broadcast,
)
from repro.kernels import HAVE_NUMBA

KERNEL_BACKENDS = ["python"] + (["numba"] if HAVE_NUMBA else [])


@pytest.fixture(scope="module")
def fitted(two_blobs_for_predict):
    pts = two_blobs_for_predict
    result = RPDBSCAN(eps=0.3, min_pts=10, num_partitions=4).fit(pts)
    model = ClusterModel(pts, result.labels, result.core_mask, eps=0.3)
    return pts, result, model


@pytest.fixture(scope="module")
def two_blobs_for_predict():
    rng = np.random.default_rng(42)
    return np.concatenate(
        [rng.normal([0, 0], 0.1, (300, 2)), rng.normal([3, 0], 0.1, (300, 2))]
    )


class TestPredict:
    def test_training_core_points_keep_labels(self, fitted):
        pts, result, model = fitted
        core = result.core_mask
        predicted = model.predict(pts[core])
        np.testing.assert_array_equal(predicted, result.labels[core])

    def test_points_near_clusters_assigned(self, fitted):
        _, _, model = fitted
        queries = np.array([[0.05, 0.05], [3.05, -0.02]])
        labels = model.predict(queries)
        assert labels[0] != labels[1]
        assert (labels >= 0).all()

    def test_far_points_are_noise(self, fitted):
        _, _, model = fitted
        assert model.predict(np.array([[50.0, 50.0]]))[0] == -1

    def test_point_just_inside_and_outside_eps(self, fitted):
        pts, result, model = fitted
        core_point = pts[result.core_mask][0]
        label = result.labels[result.core_mask][0]
        inside = core_point + np.array([0.29, 0.0])
        outside = core_point + np.array([10.0, 0.0])
        got = model.predict(np.stack([inside, outside]))
        assert got[0] == label
        assert got[1] == -1

    def test_empty_query(self, fitted):
        _, _, model = fitted
        assert model.predict(np.empty((0, 2))).shape == (0,)

    def test_no_core_points(self):
        pts = np.array([[0.0, 0.0], [10.0, 10.0]])
        model = ClusterModel(
            pts, np.array([-1, -1]), np.array([False, False]), eps=1.0
        )
        assert model.predict(pts).tolist() == [-1, -1]
        assert model.n_core_points == 0

    def test_validation(self, fitted):
        pts, result, model = fitted
        with pytest.raises(ValueError):
            ClusterModel(pts, result.labels[:10], result.core_mask, eps=0.3)
        with pytest.raises(ValueError):
            ClusterModel(pts, result.labels, result.core_mask, eps=-1.0)
        with pytest.raises(ValueError):
            model.predict(np.zeros((3, 5)))  # wrong dimension

    def test_core_noise_conflict_rejected(self):
        pts = np.zeros((2, 2))
        with pytest.raises(ValueError):
            ClusterModel(
                pts, np.array([-1, 0]), np.array([True, False]), eps=1.0
            )


class TestDegenerates:
    def test_zero_dim_points_rejected(self):
        with pytest.raises(ValueError, match="coordinate axis"):
            ClusterModel(
                np.empty((5, 0)),
                np.zeros(5, dtype=np.int64),
                np.zeros(5, dtype=bool),
                eps=1.0,
            )

    def test_empty_model(self):
        model = ClusterModel(
            np.empty((0, 2)), np.empty(0, np.int64), np.empty(0, bool), eps=1.0
        )
        assert model.n_core_points == 0
        assert model.num_cells == 0
        assert model.predict(np.zeros((3, 2))).tolist() == [-1, -1, -1]

    def test_all_noise_fit_serves_noise(self):
        # Too sparse for min_pts: the fit labels everything noise and the
        # served model must agree everywhere.
        pts = np.arange(20, dtype=np.float64).reshape(10, 2) * 10.0
        result = RPDBSCAN(eps=0.3, min_pts=5).fit(pts)
        assert (result.labels == -1).all()
        model = ClusterModel.from_state(result.state)
        assert model.n_core_points == 0
        assert (model.predict(pts) == -1).all()

    def test_duplicate_queries_get_identical_labels(self, fitted):
        pts, _, model = fitted
        queries = np.tile(pts[:25], (4, 1))
        got = model.predict(queries).reshape(4, 25)
        for rep in range(1, 4):
            np.testing.assert_array_equal(got[rep], got[0])

    def test_point_exactly_at_eps_is_assigned(self):
        # The rule is inclusive (d <= eps), matching Phase II's
        # sequential squared-distance comparison bit for bit.
        core = np.array([[0.0, 0.0]])
        model = ClusterModel(
            core, np.array([7]), np.array([True]), eps=0.3
        )
        queries = np.array([[0.3, 0.0], [0.0, 0.3], [np.nextafter(0.3, 1), 0.0]])
        assert model.predict(queries).tolist() == [7, 7, -1]

    def test_dim_mismatch_rejected(self, fitted):
        _, _, model = fitted
        with pytest.raises(ValueError, match=r"\(m, 2\)"):
            model.predict(np.zeros((4, 3)))
        with pytest.raises(ValueError):
            model.predict(np.zeros(4))


class TestFromState:
    def test_matches_legacy_constructor(self, fitted):
        pts, result, model = fitted
        via_state = ClusterModel.from_state(result.state)
        rng = np.random.default_rng(9)
        queries = rng.uniform(-0.5, 3.5, (400, 2))
        np.testing.assert_array_equal(
            via_state.predict(queries), model.predict(queries)
        )
        assert via_state.n_core_points == model.n_core_points
        assert via_state.num_cells == model.num_cells

    def test_kernel_override(self, fitted):
        _, result, _ = fitted
        model = ClusterModel.from_state(result.state, kernel="python")
        assert model.kernel == "python"


class TestWarmup:
    def test_warmup_returns_seconds_and_primes_predict(self, fitted):
        _, result, _ = fitted
        model = ClusterModel.from_state(result.state)
        seconds = model.warmup()
        assert seconds >= 0.0
        # Warm-up must not disturb prediction results.
        rng = np.random.default_rng(17)
        queries = rng.uniform(-0.5, 3.5, (100, 2))
        reference = ClusterModel.from_state(result.state).predict(queries)
        np.testing.assert_array_equal(model.predict(queries), reference)

    def test_warmup_on_empty_model(self):
        model = ClusterModel(
            np.zeros((0, 2)),
            np.zeros(0, dtype=np.int64),
            np.zeros(0, dtype=bool),
            eps=1.0,
        )
        assert model.warmup() >= 0.0

    @pytest.mark.parametrize("backend", KERNEL_BACKENDS)
    def test_warmup_per_backend(self, fitted, backend):
        _, result, _ = fitted
        model = ClusterModel.from_state(result.state, kernel=backend)
        assert model.warmup() >= 0.0


class TestKernelBackends:
    @pytest.mark.parametrize("backend", KERNEL_BACKENDS)
    def test_bit_identical_to_numpy(self, fitted, backend):
        pts, result, _ = fitted
        reference = ClusterModel(
            pts, result.labels, result.core_mask, eps=0.3, kernel="numpy"
        )
        other = ClusterModel(
            pts, result.labels, result.core_mask, eps=0.3, kernel=backend
        )
        rng = np.random.default_rng(11)
        queries = np.concatenate(
            [rng.uniform(-0.5, 3.5, (500, 2)), pts[:100]]
        )
        np.testing.assert_array_equal(
            other.predict(queries), reference.predict(queries)
        )


class TestShmBroadcast:
    def test_model_rides_the_shared_memory_channel(self, fitted):
        pts, _, model = fitted
        # The model's payload is a FlatCellDictionary, so the export
        # pickler hoists it into a segment and the remaining blob is
        # just the descriptor-sized shell.
        blob, flats = export_broadcast(model)
        assert len(flats) == 1
        assert flats[0] is model._table
        assert len(blob) < 16_384
        handle, shm = create_segment(flats)
        try:
            clone = import_broadcast(blob, handle, shm)
            assert not clone._table.sub_centers.flags.writeable
            queries = np.concatenate([pts[:50], [[50.0, 50.0]]])
            np.testing.assert_array_equal(
                clone.predict(queries), model.predict(queries)
            )
        finally:
            destroy_segment(shm)


class TestPredictProperty:
    @settings(
        max_examples=12,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(seed=st.integers(0, 2**31 - 1), n=st.integers(40, 160))
    def test_core_points_predict_their_fitted_labels(self, seed, n):
        # DBSCAN's own serving consistency: every fitted core point is
        # its own nearest core at distance 0, so predict must return the
        # fitted label on the whole core set.
        rng = np.random.default_rng(seed)
        pts = np.concatenate(
            [
                rng.normal([0.0, 0.0], 0.15, (n, 2)),
                rng.normal([2.0, 1.0], 0.15, (n, 2)),
                rng.uniform(-1.0, 3.0, (10, 2)),
            ]
        )
        result = RPDBSCAN(eps=0.25, min_pts=5, num_partitions=4).fit(pts)
        model = ClusterModel.from_state(result.state)
        core = result.core_mask
        np.testing.assert_array_equal(
            model.predict(pts[core]), result.labels[core]
        )
