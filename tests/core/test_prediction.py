"""Unit tests for ClusterModel.predict."""

import numpy as np
import pytest

from repro import RPDBSCAN
from repro.core.prediction import ClusterModel


@pytest.fixture(scope="module")
def fitted(two_blobs_for_predict):
    pts = two_blobs_for_predict
    result = RPDBSCAN(eps=0.3, min_pts=10, num_partitions=4).fit(pts)
    model = ClusterModel(pts, result.labels, result.core_mask, eps=0.3)
    return pts, result, model


@pytest.fixture(scope="module")
def two_blobs_for_predict():
    rng = np.random.default_rng(42)
    return np.concatenate(
        [rng.normal([0, 0], 0.1, (300, 2)), rng.normal([3, 0], 0.1, (300, 2))]
    )


class TestPredict:
    def test_training_core_points_keep_labels(self, fitted):
        pts, result, model = fitted
        core = result.core_mask
        predicted = model.predict(pts[core])
        np.testing.assert_array_equal(predicted, result.labels[core])

    def test_points_near_clusters_assigned(self, fitted):
        _, _, model = fitted
        queries = np.array([[0.05, 0.05], [3.05, -0.02]])
        labels = model.predict(queries)
        assert labels[0] != labels[1]
        assert (labels >= 0).all()

    def test_far_points_are_noise(self, fitted):
        _, _, model = fitted
        assert model.predict(np.array([[50.0, 50.0]]))[0] == -1

    def test_point_just_inside_and_outside_eps(self, fitted):
        pts, result, model = fitted
        core_point = pts[result.core_mask][0]
        label = result.labels[result.core_mask][0]
        inside = core_point + np.array([0.29, 0.0])
        outside = core_point + np.array([10.0, 0.0])
        got = model.predict(np.stack([inside, outside]))
        assert got[0] == label
        assert got[1] == -1

    def test_empty_query(self, fitted):
        _, _, model = fitted
        assert model.predict(np.empty((0, 2))).shape == (0,)

    def test_no_core_points(self):
        pts = np.array([[0.0, 0.0], [10.0, 10.0]])
        model = ClusterModel(
            pts, np.array([-1, -1]), np.array([False, False]), eps=1.0
        )
        assert model.predict(pts).tolist() == [-1, -1]
        assert model.n_core_points == 0

    def test_validation(self, fitted):
        pts, result, model = fitted
        with pytest.raises(ValueError):
            ClusterModel(pts, result.labels[:10], result.core_mask, eps=0.3)
        with pytest.raises(ValueError):
            ClusterModel(pts, result.labels, result.core_mask, eps=-1.0)
        with pytest.raises(ValueError):
            model.predict(np.zeros((3, 5)))  # wrong dimension

    def test_core_noise_conflict_rejected(self):
        pts = np.zeros((2, 2))
        with pytest.raises(ValueError):
            ClusterModel(
                pts, np.array([-1, 0]), np.array([True, False]), eps=1.0
            )
