"""Unit tests for repro.core.region_query (Def 5.1, Lemma 5.2).

The key correctness property is the sandwich of Lemma 5.2: every exact
neighbor at distance <= (1 - rho/2) eps is found, and nothing farther
than (1 + rho/2) eps is ever returned.
"""

import numpy as np
import pytest

from repro.core.cells import CellGeometry
from repro.core.defragmentation import defragment
from repro.core.dictionary import CellDictionary
from repro.core.region_query import RegionQueryEngine


@pytest.fixture(scope="module")
def workload():
    rng = np.random.default_rng(0)
    pts = np.concatenate(
        [rng.normal([1, 1], 0.3, (500, 2)), rng.uniform(0, 4, (300, 2))]
    )
    return pts


@pytest.fixture(scope="module")
def geometry():
    return CellGeometry(eps=0.4, dim=2, rho=0.01)


@pytest.fixture(scope="module")
def dictionary(workload, geometry):
    return CellDictionary.from_points(workload, geometry)


@pytest.fixture(scope="module")
def engine(dictionary):
    return RegionQueryEngine(dictionary)


def exact_count(points, query, radius):
    diff = points - query
    return int(np.count_nonzero(np.einsum("ij,ij->i", diff, diff) <= radius**2))


class TestSandwichBound:
    def test_counts_between_inner_and_outer_ball(self, workload, geometry, engine):
        eps, rho = geometry.eps, geometry.rho
        rng = np.random.default_rng(1)
        queries = workload[rng.choice(workload.shape[0], 50, replace=False)]
        for q in queries:
            approx, _ = engine.query_point(q)
            inner = exact_count(workload, q, (1 - rho / 2) * eps)
            outer = exact_count(workload, q, (1 + rho / 2) * eps)
            assert inner <= approx <= outer

    def test_small_rho_converges_to_exact(self, workload):
        geometry = CellGeometry(eps=0.4, dim=2, rho=0.001)
        dictionary = CellDictionary.from_points(workload, geometry)
        engine = RegionQueryEngine(dictionary)
        rng = np.random.default_rng(2)
        disagreements = 0
        queries = workload[rng.choice(workload.shape[0], 30, replace=False)]
        for q in queries:
            approx, _ = engine.query_point(q)
            if int(approx) != exact_count(workload, q, 0.4):
                disagreements += 1
        assert disagreements <= 1  # boundary coincidences only


class TestBatchVsPointwise:
    def test_batch_matches_single_queries(self, workload, geometry, engine):
        groups = {}
        ids = geometry.cell_ids(workload)
        for i, cid in enumerate(map(tuple, ids.tolist())):
            groups.setdefault(cid, []).append(i)
        some_cells = list(groups)[:5]
        for cell_id in some_cells:
            pts = workload[groups[cell_id]]
            batch = engine.query_cell_batch(cell_id, pts)
            for row, point in enumerate(pts):
                count, touched = engine.query_point(point)
                assert batch.counts[row] == pytest.approx(count)
                batch_touched = [
                    cid
                    for j, cid in enumerate(batch.candidate_ids)
                    if batch.touch[row, j]
                ]
                assert batch_touched == touched

    def test_empty_points(self, engine):
        result = engine.query_cell_batch((0, 0), np.empty((0, 2)))
        assert result.counts.shape == (0,)

    def test_query_in_empty_region(self, engine):
        count, touched = engine.query_point(np.array([500.0, 500.0]))
        assert count == 0 and touched == []


class TestStrategies:
    def test_enumerate_and_kdtree_agree(self, workload, dictionary):
        enum = RegionQueryEngine(dictionary, strategy="enumerate")
        tree = RegionQueryEngine(dictionary, strategy="kdtree")
        rng = np.random.default_rng(3)
        queries = workload[rng.choice(workload.shape[0], 25, replace=False)]
        for q in queries:
            ce, te = enum.query_point(q)
            ct, tt = tree.query_point(q)
            assert ce == pytest.approx(ct)
            assert te == tt

    def test_invalid_strategy(self, dictionary):
        with pytest.raises(ValueError):
            RegionQueryEngine(dictionary, strategy="psychic")


class TestDefragmentedQueries:
    def test_results_identical_with_defragmentation(self, workload, dictionary):
        plain = RegionQueryEngine(dictionary)
        defrag = RegionQueryEngine(defragment(dictionary, capacity=100))
        rng = np.random.default_rng(4)
        queries = workload[rng.choice(workload.shape[0], 25, replace=False)]
        for q in queries:
            cp, tp = plain.query_point(q)
            cd, td = defrag.query_point(q)
            assert cp == pytest.approx(cd)
            assert tp == td

    def test_consultation_stats_tracked(self, workload, dictionary):
        wrapped = defragment(dictionary, capacity=100)
        engine = RegionQueryEngine(wrapped)
        engine.query_point(workload[0])
        assert wrapped.queries == 1
        assert 1 <= wrapped.average_consulted() <= wrapped.num_sub_dicts


class TestNeighborSubcells:
    def test_literal_nsc_matches_counts(self, workload, geometry, dictionary, engine):
        rng = np.random.default_rng(5)
        queries = workload[rng.choice(workload.shape[0], 10, replace=False)]
        for q in queries:
            count, _ = engine.query_point(q)
            nsc = engine.neighbor_subcells(q)
            total = sum(
                float(dictionary.densities(cell_id)[mask].sum())
                for cell_id, mask in nsc
            )
            assert total == pytest.approx(count)

    def test_own_subcell_always_included(self, workload, engine, geometry):
        q = workload[0]
        count, _ = engine.query_point(q)
        assert count >= 1  # the point itself is always counted
