"""Unit tests for repro.core.merging (Phase III-1, Sec 6.1)."""

import numpy as np
import pytest

from repro.core.cell_graph import CellGraph, EdgeType
from repro.core.cells import CellGeometry
from repro.core.construction import QueryContext, build_cell_subgraph
from repro.core.dictionary import CellDictionary
from repro.core.merging import merge_pair, progressive_merge
from repro.core.partitioning import pseudo_random_partition
from repro.graph.spanning_forest import connected_components


def canonical(labels: dict) -> frozenset:
    """Partition induced by a labeling, invariant to label numbering."""
    groups: dict = {}
    for item, label in labels.items():
        groups.setdefault(label, set()).add(item)
    return frozenset(frozenset(g) for g in groups.values())


@pytest.fixture(scope="module")
def subgraphs():
    rng = np.random.default_rng(0)
    pts = np.concatenate(
        [rng.normal([0, 0], 0.15, (400, 2)), rng.normal([3, 3], 0.15, (400, 2))]
    )
    geometry = CellGeometry(eps=0.4, dim=2, rho=0.01)
    partitions = pseudo_random_partition(pts, geometry, 6, seed=0)
    dictionary = CellDictionary.from_points(pts, geometry)
    context = QueryContext(dictionary)
    return [build_cell_subgraph(p, context, 10).graph for p in partitions]


class TestProgressiveMerge:
    def test_final_graph_is_global(self, subgraphs):
        final, _ = progressive_merge(subgraphs)
        assert final.is_global()
        final.validate()

    def test_round_zero_is_total_edges(self, subgraphs):
        _, stats = progressive_merge(subgraphs)
        assert stats.edges_per_round[0] == sum(g.num_edges for g in subgraphs)

    def test_edges_monotonically_nonincreasing(self, subgraphs):
        # Merging only unions vertex knowledge and removes redundancy.
        _, stats = progressive_merge(subgraphs)
        rounds = stats.edges_per_round
        assert all(a >= b for a, b in zip(rounds, rounds[1:]))

    def test_round_count_is_log2(self, subgraphs):
        _, stats = progressive_merge(subgraphs)
        # 6 graphs -> 3 -> 2 -> 1: three rounds.
        assert stats.num_rounds == 3

    def test_single_graph_still_finalized(self, subgraphs):
        final, stats = progressive_merge([subgraphs[0]])
        assert stats.num_rounds == 0
        assert not final._undetermined_edges or not final.is_global()

    def test_empty_input(self):
        final, stats = progressive_merge([])
        assert final.num_edges == 0
        assert stats.edges_per_round == [0]

    def test_order_insensitive_clustering(self, subgraphs):
        # The final connected components over full edges must not depend
        # on the tournament order.
        final_a, _ = progressive_merge(list(subgraphs))
        final_b, _ = progressive_merge(list(reversed(subgraphs)))
        comp_a = connected_components(
            sorted(final_a.core), final_a.edges_of_type(EdgeType.FULL)
        )
        comp_b = connected_components(
            sorted(final_b.core), final_b.edges_of_type(EdgeType.FULL)
        )
        assert canonical(comp_a) == canonical(comp_b)

    def test_reduction_off_preserves_components(self, subgraphs):
        with_red, _ = progressive_merge(list(subgraphs), reduce_edges=True)
        without, _ = progressive_merge(list(subgraphs), reduce_edges=False)
        comp_with = connected_components(
            sorted(with_red.core), with_red.edges_of_type(EdgeType.FULL)
        )
        comp_without = connected_components(
            sorted(without.core), without.edges_of_type(EdgeType.FULL)
        )
        assert canonical(comp_with) == canonical(comp_without)
        assert without.num_edges >= with_red.num_edges


class TestMergePair:
    def test_resolves_cross_partition_edges(self):
        a = CellGraph()
        a.add_core_cell((0, 0))
        a.add_undetermined_cell((1, 0))
        a.add_edge((0, 0), (1, 0), EdgeType.UNDETERMINED)
        b = CellGraph()
        b.add_core_cell((1, 0))
        b.add_undetermined_cell((0, 0))
        b.add_edge((1, 0), (0, 0), EdgeType.UNDETERMINED)
        merged, resolved, removed = merge_pair(a, b)
        assert resolved == 2
        # Both edges became FULL, forming a 2-cycle; one was removed.
        assert removed == 1
        assert merged.is_global()

    def test_reduce_disabled(self):
        a = CellGraph()
        a.add_core_cell((0, 0))
        a.add_core_cell((1, 0))
        a.add_edge((0, 0), (1, 0), EdgeType.FULL)
        b = CellGraph()
        b.add_core_cell((0, 0))
        b.add_core_cell((1, 0))
        b.add_edge((1, 0), (0, 0), EdgeType.FULL)
        merged, _, removed = merge_pair(a, b, reduce_edges=False)
        assert removed == 0
        assert merged.num_edges == 2


class TestAbsorbResolving:
    """The fused absorb+detect path (the tournament hot path) must be
    exactly equivalent to Definition 6.2 followed by Section 6.1.3."""

    def _random_subgraphs(self, seed):
        rng = np.random.default_rng(seed)
        pts = np.concatenate(
            [rng.normal([0, 0], 0.2, (60, 2)), rng.normal([4, 4], 0.2, (60, 2))]
        )
        geometry = CellGeometry(0.5, 2, 0.01)
        partitions = pseudo_random_partition(pts, geometry, 4, seed=seed)
        dictionary = CellDictionary.from_points(pts, geometry)
        context = QueryContext(dictionary)
        return [build_cell_subgraph(p, context, 5).graph for p in partitions]

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_equivalent_to_absorb_plus_detect(self, seed):
        graphs = self._random_subgraphs(seed)
        slow = graphs[0].copy().absorb(graphs[1].copy())
        slow_resolved = slow.detect_edge_types()
        fast = graphs[0].copy()
        fast_resolved = fast.absorb_resolving(graphs[1].copy())
        assert slow_resolved == fast_resolved
        assert slow.edges == fast.edges
        assert slow.core == fast.core
        assert slow.noncore == fast.noncore
        assert slow.undetermined == fast.undetermined

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_tournament_never_breaks_connectivity(self, seed):
        # Regression: a tree edge arriving from the other branch must not
        # be re-tested against the forest connectivity it itself
        # provides (that deleted it and fragmented clusters).
        graphs = self._random_subgraphs(seed)
        merged, _ = progressive_merge(graphs)
        single, _ = progressive_merge(
            [CellGraph.merge(CellGraph(), g) for g in graphs][:1]
            + [g.copy() for g in graphs[1:]]
        )
        one_shot = CellGraph()
        for g in graphs:
            one_shot.absorb(g)
        one_shot.detect_edge_types()
        expected = connected_components(
            sorted(one_shot.core), one_shot.edges_of_type(EdgeType.FULL)
        )
        got = connected_components(
            sorted(merged.core), merged.edges_of_type(EdgeType.FULL)
        )
        assert canonical(got) == canonical(expected)
