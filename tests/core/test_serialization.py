"""Unit tests for the bit-packed dictionary serialization."""

import numpy as np
import pytest

from repro.core.cells import CellGeometry
from repro.core.dictionary import CellDictionary
from repro.core.region_query import RegionQueryEngine
from repro.core.serialization import (
    HEADER_BYTES,
    deserialize_dictionary,
    serialize_dictionary,
)


@pytest.fixture(scope="module")
def workload():
    rng = np.random.default_rng(0)
    return np.concatenate(
        [rng.normal([1, 1], 0.3, (400, 2)), rng.uniform(-1, 3, (200, 2))]
    )


@pytest.fixture(scope="module", params=[0.5, 0.1, 0.05])
def dictionary(request, workload):
    geometry = CellGeometry(eps=0.4, dim=2, rho=request.param)
    return CellDictionary.from_points(workload, geometry)


class TestRoundtrip:
    def test_structure_preserved(self, dictionary):
        clone = deserialize_dictionary(serialize_dictionary(dictionary))
        assert set(clone.cells) == set(dictionary.cells)
        for cell_id, summary in dictionary.cells.items():
            other = clone.cells[cell_id]
            assert other.count == summary.count
            # Sub-cells compare as sets of (coords, count).
            original = {
                (tuple(c), int(n))
                for c, n in zip(summary.sub_coords.tolist(), summary.sub_counts)
            }
            restored = {
                (tuple(c), int(n))
                for c, n in zip(other.sub_coords.tolist(), other.sub_counts)
            }
            assert original == restored

    def test_geometry_preserved(self, dictionary):
        clone = deserialize_dictionary(serialize_dictionary(dictionary))
        assert clone.geometry == dictionary.geometry

    def test_queries_identical_after_roundtrip(self, workload, dictionary):
        original = RegionQueryEngine(dictionary)
        restored = RegionQueryEngine(
            deserialize_dictionary(serialize_dictionary(dictionary))
        )
        rng = np.random.default_rng(1)
        for q in workload[rng.choice(workload.shape[0], 15, replace=False)]:
            count_a, cells_a = original.query_point(q)
            count_b, cells_b = restored.query_point(q)
            assert count_a == pytest.approx(count_b)
            assert cells_a == cells_b

    def test_empty_dictionary(self):
        geometry = CellGeometry(1.0, 3, 0.1)
        empty = CellDictionary(geometry, {})
        clone = deserialize_dictionary(serialize_dictionary(empty))
        assert clone.num_cells == 0

    def test_empty_dictionary_is_header_only(self):
        geometry = CellGeometry(1.0, 3, 0.1)
        data = serialize_dictionary(CellDictionary(geometry, {}))
        assert len(data) == HEADER_BYTES
        clone = deserialize_dictionary(data)
        assert clone.geometry == geometry
        assert clone.cells == {}

    def test_single_cell_dictionary(self):
        # One point -> one cell with one sub-cell: the smallest
        # non-empty stream exercises every per-cell field exactly once.
        geometry = CellGeometry(eps=0.4, dim=2, rho=0.1)
        single = CellDictionary.from_points(np.array([[0.05, 0.05]]), geometry)
        assert single.num_cells == 1
        clone = deserialize_dictionary(serialize_dictionary(single))
        assert clone.num_cells == 1
        ((cell_id, summary),) = clone.cells.items()
        original = single.cells[cell_id]
        assert summary.count == original.count == 1
        assert summary.sub_coords.tolist() == original.sub_coords.tolist()
        assert summary.sub_counts.tolist() == original.sub_counts.tolist()

    def test_h1_geometry_round_trips(self, workload):
        # rho = 1.0 collapses the hierarchy to h = 1: zero bits per
        # sub-cell axis, so the bit-packed position payload is empty and
        # the stream must survive packing/unpacking zero-width fields.
        geometry = CellGeometry(eps=0.4, dim=2, rho=1.0)
        assert geometry.h == 1
        dictionary = CellDictionary.from_points(workload, geometry)
        clone = deserialize_dictionary(serialize_dictionary(dictionary))
        assert clone.geometry == dictionary.geometry
        assert set(clone.cells) == set(dictionary.cells)
        for cell_id, summary in dictionary.cells.items():
            other = clone.cells[cell_id]
            assert other.count == summary.count
            assert sorted(map(tuple, other.sub_coords.tolist())) == sorted(
                map(tuple, summary.sub_coords.tolist())
            )
            assert sum(other.sub_counts) == sum(summary.sub_counts)

    def test_bad_magic_rejected(self):
        with pytest.raises(ValueError):
            deserialize_dictionary(b"XXXX" + b"\0" * 64)


class TestSizeModelValidation:
    """Lemma 4.3's formula must match the actual byte stream."""

    def test_bytes_close_to_model(self, dictionary):
        data = serialize_dictionary(dictionary)
        model = dictionary.size_model()
        actual_bits = 8 * (len(data) - HEADER_BYTES)
        # The stream additionally stores a per-cell sub-cell count
        # (32 bits each) and pads bit-packed positions to whole bytes
        # (< 8 bits per cell); everything else matches Lemma 4.3.
        overhead_bits = dictionary.num_cells * (32 + 8)
        assert model.total_bits <= actual_bits <= model.total_bits + overhead_bits

    def test_compression_against_raw_points(self, workload):
        # At realistic densities the stream undercuts raw float32 data
        # as N grows (Table 5's claim); check the trend at two sizes.
        geometry = CellGeometry(eps=0.4, dim=2, rho=0.05)
        small = CellDictionary.from_points(workload, geometry)
        big_points = np.tile(workload, (20, 1))
        big = CellDictionary.from_points(big_points, geometry)
        ratio_small = len(serialize_dictionary(small)) / (workload.nbytes / 2)
        ratio_big = len(serialize_dictionary(big)) / (big_points.nbytes / 2)
        assert ratio_big < ratio_small
