"""Property-based equivalence of the Phase III-1 merge plane.

The ISSUE-level contract: labels, cluster counts, and the per-round
``MergeStats`` accounting are **bit-identical** across every combination
of ``merge_mode`` ({driver, engine, auto}) and ``graph_layout``
({flat, dict}).  The driver-mode dict-layout run is the reference (the
original single-path implementation); every other combination must
reproduce it exactly — including the degenerate shapes the tournament
must survive: one partition (no rounds), odd partition counts (bye
rounds), more partitions than points (empty partitions), and all-noise
data.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import RPDBSCAN
from repro.engine import Engine

SETTINGS = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

#: Every (merge_mode, graph_layout) combination other than the
#: reference (driver, dict).
VARIANTS = [
    ("driver", "flat"),
    ("engine", "dict"),
    ("engine", "flat"),
    ("auto", "dict"),
    ("auto", "flat"),
]


def two_blob_points(seed: int, n: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    half = max(n // 2, 1)
    return np.concatenate(
        [
            rng.normal([0, 0], 0.2, (half, 2)),
            rng.normal([4, 4], 0.2, (n - half, 2)),
        ]
    )


def run(points, k, merge_mode, graph_layout, *, min_pts=5):
    with Engine("serial") as engine:
        model = RPDBSCAN(
            eps=0.5,
            min_pts=min_pts,
            num_partitions=k,
            seed=0,
            engine=engine,
            merge_mode=merge_mode,
            graph_layout=graph_layout,
        )
        return model.fit(points)


def assert_bit_identical(reference, result):
    assert np.array_equal(reference.labels, result.labels)
    assert np.array_equal(reference.core_mask, result.core_mask)
    assert reference.n_clusters == result.n_clusters
    ref_stats, stats = reference.merge_stats, result.merge_stats
    assert ref_stats.edges_per_round == stats.edges_per_round
    assert ref_stats.resolved_per_round == stats.resolved_per_round
    assert ref_stats.removed_per_round == stats.removed_per_round
    assert ref_stats.num_rounds == stats.num_rounds


class TestMergePlaneEquivalence:
    @SETTINGS
    @given(
        seed=st.integers(0, 1_000),
        n=st.integers(40, 160),
        k=st.integers(1, 9),
    )
    def test_every_variant_matches_reference(self, seed, n, k):
        points = two_blob_points(seed, n)
        reference = run(points, k, "driver", "dict")
        for merge_mode, graph_layout in VARIANTS:
            result = run(points, k, merge_mode, graph_layout)
            assert_bit_identical(reference, result)

    @SETTINGS
    @given(seed=st.integers(0, 1_000), n=st.integers(10, 60))
    def test_single_partition_has_no_rounds(self, seed, n):
        # k=1: the tournament is a bye all the way down.
        points = two_blob_points(seed, n)
        reference = run(points, 1, "driver", "dict")
        assert reference.merge_stats.num_rounds == 0
        for merge_mode, graph_layout in VARIANTS:
            assert_bit_identical(
                reference, run(points, 1, merge_mode, graph_layout)
            )

    @SETTINGS
    @given(seed=st.integers(0, 1_000), k=st.sampled_from([3, 5, 7]))
    def test_bye_rounds(self, seed, k):
        # Odd partition counts force a bye in round one (and possibly
        # later); the carried-over graph must stay bit-equivalent.
        points = two_blob_points(seed, 120)
        reference = run(points, k, "driver", "dict")
        for merge_mode, graph_layout in VARIANTS:
            assert_bit_identical(
                reference, run(points, k, merge_mode, graph_layout)
            )

    @SETTINGS
    @given(seed=st.integers(0, 1_000))
    def test_more_partitions_than_points(self, seed):
        # Empty partitions emit empty subgraphs that still enter the
        # tournament bracket.
        points = two_blob_points(seed, 6)
        reference = run(points, 10, "driver", "dict")
        for merge_mode, graph_layout in VARIANTS:
            assert_bit_identical(
                reference, run(points, 10, merge_mode, graph_layout)
            )

    @SETTINGS
    @given(seed=st.integers(0, 1_000), k=st.integers(2, 6))
    def test_all_noise(self, seed, k):
        # min_pts larger than the data set: no core cells anywhere, the
        # merged graph carries no FULL edges, everything labels -1.
        points = two_blob_points(seed, 40)
        reference = run(points, k, "driver", "dict", min_pts=100)
        assert reference.n_clusters == 0
        assert np.all(reference.labels == -1)
        for merge_mode, graph_layout in VARIANTS:
            result = run(points, k, merge_mode, graph_layout, min_pts=100)
            assert_bit_identical(reference, result)

    def test_merge_mode_validation(self):
        with pytest.raises(ValueError, match="merge_mode"):
            RPDBSCAN(eps=0.5, min_pts=5, merge_mode="spark")
        with pytest.raises(ValueError, match="graph_layout"):
            RPDBSCAN(eps=0.5, min_pts=5, graph_layout="columnar")
