"""Conformance matrix: kernel x dictionary_layout x broadcast channel.

Every combination must produce labels, core flags, and cluster counts
bit-identical to the fault-free serial numpy reference fit — the same
acceptance shape as the engine's channel-identity tests, extended along
the kernel axis.  Also pins the operational contract around the kernel
switch: warm-up runs under the ``engine.setup`` bucket (never phase
timings), the run report names the kernel, and the metrics registry
counts which backend ran.
"""

import numpy as np
import pytest

from repro.core.rp_dbscan import PHASES, RPDBSCAN
from repro.engine import Engine
from repro.kernels import HAVE_NUMBA
from repro.obs import Tracer, render_run_report

requires_numba = pytest.mark.skipif(not HAVE_NUMBA, reason="numba not installed")

KERNELS_UNDER_TEST = [
    "numpy",
    "python",
    pytest.param("numba", marks=requires_numba),
]
LAYOUTS = ("flat", "dict")
CHANNELS = ("pickle", "shm")

FIT_KWARGS = dict(eps=0.3, min_pts=10, num_partitions=6, seed=0)


@pytest.fixture(scope="module")
def reference(two_blobs):
    """The fault-free serial numpy fit every combination must match."""
    result = RPDBSCAN(kernel="numpy", **FIT_KWARGS).fit(two_blobs)
    assert result.n_clusters == 2
    return result


class TestConformanceMatrix:
    @pytest.mark.parametrize("kernel", KERNELS_UNDER_TEST)
    @pytest.mark.parametrize("layout", LAYOUTS)
    def test_serial_engine(self, two_blobs, reference, layout, kernel):
        result = RPDBSCAN(
            kernel=kernel, dictionary_layout=layout, **FIT_KWARGS
        ).fit(two_blobs)
        np.testing.assert_array_equal(result.labels, reference.labels)
        np.testing.assert_array_equal(result.core_mask, reference.core_mask)
        assert result.n_clusters == reference.n_clusters

    @pytest.mark.parametrize("kernel", KERNELS_UNDER_TEST)
    @pytest.mark.parametrize("channel", CHANNELS)
    @pytest.mark.parametrize("layout", LAYOUTS)
    def test_process_engine(self, two_blobs, reference, layout, channel, kernel):
        with Engine("process", num_workers=2, broadcast_channel=channel) as engine:
            result = RPDBSCAN(
                kernel=kernel,
                dictionary_layout=layout,
                engine=engine,
                **FIT_KWARGS,
            ).fit(two_blobs)
        np.testing.assert_array_equal(result.labels, reference.labels)
        np.testing.assert_array_equal(result.core_mask, reference.core_mask)
        assert result.kernel == kernel


class TestOperationalContract:
    @pytest.mark.parametrize("kernel", ["numpy", "python"])
    def test_warmup_in_setup_bucket_not_phases(self, two_blobs, kernel):
        # The warm-up hook (engine build + kernel JIT when compiled)
        # bills to engine.setup; phase buckets see only task work.
        result = RPDBSCAN(kernel=kernel, **FIT_KWARGS).fit(two_blobs)
        assert set(result.counters.phase_seconds) <= set(PHASES)
        assert "warmup" in result.counters.setup_seconds
        assert result.setup_seconds >= 0.0

    def test_run_report_names_kernel(self, two_blobs):
        tracer = Tracer()
        with Engine("serial", tracer=tracer) as engine:
            RPDBSCAN(kernel="python", engine=engine, **FIT_KWARGS).fit(two_blobs)
        report = render_run_report(tracer.spans)
        assert "kernel=python" in report

    def test_registry_counts_resolved_kernel(self, two_blobs):
        # The live engine registry (result.counters is a per-fit delta
        # with its own mirror) counts one fit per resolved backend.
        with Engine("serial") as engine:
            RPDBSCAN(kernel="python", engine=engine, **FIT_KWARGS).fit(two_blobs)
            RPDBSCAN(kernel="numpy", engine=engine, **FIT_KWARGS).fit(two_blobs)
            snapshot = engine.counters.registry.snapshot()
        assert snapshot.get("phase2.kernel.python") == 1
        assert snapshot.get("phase2.kernel.numpy") == 1

    @requires_numba
    def test_numba_warmup_visible_in_setup(self, two_blobs):
        from repro.kernels import phase2

        result = RPDBSCAN(kernel="numba", **FIT_KWARGS).fit(two_blobs)
        assert two_blobs.shape[1] in phase2.warmed_dims()
        assert "warmup" in result.counters.setup_seconds
