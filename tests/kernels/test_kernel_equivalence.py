"""Differential bit-identity suite for the Phase II kernels.

Pins every kernel backend exact-equal to the vectorized numpy reference:
candidate gathers (row order), distance filters (touch masks), density
counts, and final labels, across rho in {0, 0.01, 0.5} and
d in {1, 2, 3, 13}, plus the degenerate inputs (empty cell, single
point, all noise, duplicate points).

The ``python`` backend — the uncompiled kernel source, exactly what
numba compiles — runs everywhere, so the differential holds in
numba-free environments too; the ``numba`` parametrizations skip (not
fail) when numba is absent.  Equality is ``np.array_equal`` on raw
arrays: no tolerance anywhere, per the bit-identity contract in
``repro/kernels/phase2.py``.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.cells import CellGeometry
from repro.core.dictionary import CellDictionary, FlatCellDictionary
from repro.core.region_query import RegionQueryEngine
from repro.core.rp_dbscan import EXACT_RHO, RPDBSCAN
from repro.kernels import HAVE_NUMBA

requires_numba = pytest.mark.skipif(not HAVE_NUMBA, reason="numba not installed")

#: Kernel backends differentially tested against "numpy".  "python" is
#: the uncompiled kernel source (always runnable); "numba" joins on
#: machines that have it.
BACKENDS = [
    "python",
    pytest.param("numba", marks=requires_numba),
]

RHOS = (0.0, 0.01, 0.5)
DIMS = (1, 2, 3, 13)
LAYOUTS = ("flat", "dict")

SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _geometry(eps: float, dim: int, rho: float) -> CellGeometry:
    # rho=0 requests the exact limit; CellGeometry wants a positive rho,
    # so alias it exactly like RPDBSCAN does.
    return CellGeometry(eps, dim, rho if rho > 0 else EXACT_RHO)


def _dictionary(points, geometry, layout):
    cd = CellDictionary.from_points(points, geometry)
    if layout == "flat":
        return FlatCellDictionary.from_cell_dictionary(cd)
    return cd


def _occupied_cells(dictionary):
    if isinstance(dictionary, FlatCellDictionary):
        return [tuple(int(x) for x in row) for row in dictionary.cell_ids]
    return list(dictionary.cells.keys())


def assert_backend_matches_numpy(points, geometry, layout, kernel, query_points=None):
    """Every batch query agrees bit-for-bit between numpy and ``kernel``."""
    dictionary = _dictionary(points, geometry, layout)
    ref = RegionQueryEngine(dictionary, kernel="numpy")
    alt = RegionQueryEngine(dictionary, kernel=kernel)
    qpts = points if query_points is None else query_points
    for cell_id in _occupied_cells(dictionary):
        expected = ref.query_cell_batch(cell_id, qpts)
        actual = alt.query_cell_batch(cell_id, qpts)
        # Candidate gather: same cells, same (lexicographic) order, same
        # dense dictionary rows.
        assert actual.candidate_ids == expected.candidate_ids
        if expected.candidate_rows is None:
            assert actual.candidate_rows is None
        else:
            np.testing.assert_array_equal(
                actual.candidate_rows, expected.candidate_rows
            )
        # Density counts and distance-filter reachability: exact-equal.
        np.testing.assert_array_equal(actual.counts, expected.counts)
        np.testing.assert_array_equal(actual.touch, expected.touch)


def _blob_points(dim: int, n: int = 150, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    a = rng.normal(0.0, 0.4, (n // 2, dim))
    b = rng.normal(2.0, 0.4, (n - n // 2, dim))
    return np.concatenate([a, b])


class TestBatchQueryEquivalence:
    """Region-query level differential: counts, touch, candidate order."""

    @pytest.mark.parametrize("kernel", BACKENDS)
    @pytest.mark.parametrize("layout", LAYOUTS)
    @pytest.mark.parametrize("rho", RHOS)
    @pytest.mark.parametrize("dim", DIMS)
    def test_grid_sweep(self, dim, rho, layout, kernel):
        points = _blob_points(dim, n=90 if dim >= 13 else 150)
        geometry = _geometry(0.8, dim, rho)
        assert_backend_matches_numpy(points, geometry, layout, kernel)

    @pytest.mark.parametrize("kernel", BACKENDS)
    @pytest.mark.parametrize("layout", LAYOUTS)
    def test_queries_from_foreign_points(self, layout, kernel):
        # Query points that are not dictionary members (and far enough
        # that some batches see zero in-range candidates).
        points = _blob_points(2, n=120, seed=3)
        foreign = np.concatenate(
            [_blob_points(2, n=40, seed=4), np.full((5, 2), 50.0)]
        )
        geometry = _geometry(0.5, 2, 0.01)
        assert_backend_matches_numpy(
            points, geometry, layout, kernel, query_points=foreign
        )


class TestDegenerateInputs:
    @pytest.mark.parametrize("kernel", BACKENDS)
    @pytest.mark.parametrize("layout", LAYOUTS)
    def test_empty_query_batch(self, layout, kernel):
        points = _blob_points(2, n=60)
        geometry = _geometry(0.5, 2, 0.01)
        dictionary = _dictionary(points, geometry, layout)
        cell = _occupied_cells(dictionary)[0]
        empty = np.empty((0, 2), dtype=np.float64)
        ref = RegionQueryEngine(dictionary, kernel="numpy")
        alt = RegionQueryEngine(dictionary, kernel=kernel)
        expected = ref.query_cell_batch(cell, empty)
        actual = alt.query_cell_batch(cell, empty)
        np.testing.assert_array_equal(actual.counts, expected.counts)
        np.testing.assert_array_equal(actual.touch, expected.touch)
        assert actual.counts.shape == (0,)

    @pytest.mark.parametrize("kernel", BACKENDS)
    @pytest.mark.parametrize("layout", LAYOUTS)
    def test_empty_cell_no_candidates_in_range(self, layout, kernel):
        # A query issued from a cell far from all data: the candidate
        # set is empty, every backend returns all-zero counts.
        points = _blob_points(2, n=60)
        geometry = _geometry(0.5, 2, 0.01)
        dictionary = _dictionary(points, geometry, layout)
        far = np.full((4, 2), 1000.0)
        far_cell = tuple(int(x) for x in geometry.cell_ids(far)[0])
        ref = RegionQueryEngine(dictionary, kernel="numpy")
        alt = RegionQueryEngine(dictionary, kernel=kernel)
        expected = ref.query_cell_batch(far_cell, far)
        actual = alt.query_cell_batch(far_cell, far)
        assert expected.candidate_ids == actual.candidate_ids == []
        np.testing.assert_array_equal(actual.counts, expected.counts)
        assert not actual.counts.any()

    @pytest.mark.parametrize("kernel", BACKENDS)
    @pytest.mark.parametrize("dim", (1, 2, 13))
    def test_single_point(self, dim, kernel):
        points = np.ones((1, dim), dtype=np.float64)
        geometry = _geometry(0.5, dim, 0.01)
        for layout in LAYOUTS:
            assert_backend_matches_numpy(points, geometry, layout, kernel)

    @pytest.mark.parametrize("kernel", BACKENDS)
    def test_duplicate_points(self, kernel):
        # Many exact duplicates: one sub-cell carrying all the density.
        points = np.tile(np.array([[0.25, -1.5]]), (50, 1))
        points = np.concatenate([points, np.tile(np.array([[0.3, -1.4]]), (30, 1))])
        geometry = _geometry(0.5, 2, 0.01)
        for layout in LAYOUTS:
            assert_backend_matches_numpy(points, geometry, layout, kernel)

    @pytest.mark.parametrize("kernel", BACKENDS)
    def test_all_noise_labels(self, kernel):
        # Spread-out points with a high min_pts: everything is noise in
        # every backend (and labels are trivially bit-identical).
        rng = np.random.default_rng(7)
        points = rng.uniform(-50, 50, (120, 2))
        ref = RPDBSCAN(eps=0.2, min_pts=30, num_partitions=4, kernel="numpy").fit(
            points
        )
        alt = RPDBSCAN(eps=0.2, min_pts=30, num_partitions=4, kernel=kernel).fit(
            points
        )
        assert (ref.labels == -1).all()
        np.testing.assert_array_equal(alt.labels, ref.labels)
        np.testing.assert_array_equal(alt.core_mask, ref.core_mask)


class TestLabelEquivalence:
    """End-to-end fits: labels, core flags, cluster counts exact-equal."""

    @pytest.mark.parametrize("kernel", BACKENDS)
    @pytest.mark.parametrize("rho", RHOS)
    @pytest.mark.parametrize("dim", (1, 2, 3))
    def test_fit_labels_bit_identical(self, dim, rho, kernel):
        points = _blob_points(dim, n=200, seed=11)
        kwargs = dict(eps=0.4, min_pts=6, num_partitions=4, rho=rho, seed=0)
        ref = RPDBSCAN(kernel="numpy", **kwargs).fit(points)
        alt = RPDBSCAN(kernel=kernel, **kwargs).fit(points)
        np.testing.assert_array_equal(alt.labels, ref.labels)
        np.testing.assert_array_equal(alt.core_mask, ref.core_mask)
        assert alt.n_clusters == ref.n_clusters
        assert ref.kernel == "numpy" and alt.kernel == kernel

    @pytest.mark.parametrize("kernel", BACKENDS)
    def test_fit_high_dimensional(self, kernel):
        points = _blob_points(13, n=120, seed=5)
        kwargs = dict(eps=1.6, min_pts=5, num_partitions=3, rho=0.01, seed=0)
        ref = RPDBSCAN(kernel="numpy", **kwargs).fit(points)
        alt = RPDBSCAN(kernel=kernel, **kwargs).fit(points)
        np.testing.assert_array_equal(alt.labels, ref.labels)
        np.testing.assert_array_equal(alt.core_mask, ref.core_mask)

    @pytest.mark.parametrize("kernel", BACKENDS)
    def test_fit_sharded_and_defragmented(self, kernel, two_blobs):
        # The gathered kernel also serves the budgeted sharded broadcast
        # and the defragmented wrapper rides the fused one.
        for extra in (
            {"broadcast_budget": 1 << 17},
            {"defragment_capacity": 64},
        ):
            kwargs = dict(eps=0.3, min_pts=10, num_partitions=4, seed=0, **extra)
            ref = RPDBSCAN(kernel="numpy", **kwargs).fit(two_blobs)
            alt = RPDBSCAN(kernel=kernel, **kwargs).fit(two_blobs)
            np.testing.assert_array_equal(alt.labels, ref.labels)
            np.testing.assert_array_equal(alt.core_mask, ref.core_mask)


class TestHypothesisDifferential:
    """Randomized differential: hypothesis drives the point sets."""

    @SETTINGS
    @given(
        points=arrays(
            np.float64,
            st.tuples(st.integers(1, 80), st.integers(1, 3)),
            elements=st.floats(-4, 4, allow_nan=False, width=32),
        ),
        eps=st.floats(0.1, 2.0),
        rho=st.sampled_from(RHOS),
    )
    @pytest.mark.parametrize("kernel", BACKENDS)
    def test_counts_and_touch_match(self, points, eps, rho, kernel):
        dim = points.shape[1]
        geometry = _geometry(eps, dim, rho)
        for layout in LAYOUTS:
            assert_backend_matches_numpy(points, geometry, layout, kernel)

    @SETTINGS
    @given(
        points=arrays(
            np.float64,
            st.tuples(st.integers(2, 60), st.just(2)),
            elements=st.floats(-3, 3, allow_nan=False, width=16),
        ),
        min_pts=st.integers(1, 10),
        k=st.integers(1, 4),
    )
    @pytest.mark.parametrize("kernel", BACKENDS)
    def test_fit_labels_match(self, points, min_pts, k, kernel):
        # width=16 floats quantize heavily -> plenty of exact duplicates,
        # stressing the duplicate-point and dense-sub-cell paths.
        kwargs = dict(eps=0.5, min_pts=min_pts, num_partitions=k, seed=0)
        ref = RPDBSCAN(kernel="numpy", **kwargs).fit(points)
        alt = RPDBSCAN(kernel=kernel, **kwargs).fit(points)
        np.testing.assert_array_equal(alt.labels, ref.labels)
        np.testing.assert_array_equal(alt.core_mask, ref.core_mask)
