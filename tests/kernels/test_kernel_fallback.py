"""The no-numba environment: fallback, clear errors, clean skips.

``kernel="auto"`` must silently fall back to numpy; an explicit
``kernel="numba"`` must raise a clear error naming the missing extra
(everywhere: resolve, model constructor, engine, CLI); and the kernel
suite must *skip* — not fail — where numba is absent (exercised by the
skip markers in the sibling modules; pinned structurally here).

Availability is simulated by monkeypatching ``phase2.HAVE_NUMBA``:
:func:`repro.kernels.resolve_kernel` re-reads it through the module on
every call, so these tests run identically with and without numba
installed.
"""

import numpy as np
import pytest

from repro.cli import main
from repro.core.region_query import RegionQueryEngine
from repro.core.rp_dbscan import RPDBSCAN
from repro.kernels import (
    KERNELS,
    KernelUnavailableError,
    phase2,
    resolve_kernel,
)


@pytest.fixture
def no_numba(monkeypatch):
    monkeypatch.setattr(phase2, "HAVE_NUMBA", False)


@pytest.fixture
def fake_numba(monkeypatch):
    monkeypatch.setattr(phase2, "HAVE_NUMBA", True)


class TestResolveKernel:
    def test_auto_falls_back_silently(self, no_numba):
        assert resolve_kernel("auto") == "numpy"

    def test_auto_prefers_numba_when_available(self, fake_numba):
        assert resolve_kernel("auto") == "numba"

    def test_numpy_and_python_always_resolve(self, no_numba):
        assert resolve_kernel("numpy") == "numpy"
        assert resolve_kernel("python") == "python"

    def test_explicit_numba_raises_naming_the_extra(self, no_numba):
        with pytest.raises(KernelUnavailableError) as excinfo:
            resolve_kernel("numba")
        message = str(excinfo.value)
        assert "kernels" in message  # the optional extra's name
        assert "numba>=0.59" in message  # what it installs
        assert "auto" in message  # the escape hatch

    def test_unknown_kernel_rejected(self):
        with pytest.raises(ValueError, match="kernel must be one of"):
            resolve_kernel("cuda")

    def test_cli_choices_cover_public_kernels(self):
        assert KERNELS == ("auto", "numpy", "numba")


class TestModelConstruction:
    def test_model_auto_resolves_to_numpy(self, no_numba):
        model = RPDBSCAN(eps=0.3, min_pts=5, kernel="auto")
        assert model.kernel == "numpy"

    def test_model_explicit_numba_fails_fast(self, no_numba):
        # The constructor raises (not a worker mid-fit).
        with pytest.raises(KernelUnavailableError, match="kernels"):
            RPDBSCAN(eps=0.3, min_pts=5, kernel="numba")

    def test_engine_explicit_numba_fails_fast(self, no_numba, two_blobs):
        from repro.core.cells import CellGeometry
        from repro.core.dictionary import FlatCellDictionary

        geometry = CellGeometry(0.3, 2, 0.01)
        dictionary = FlatCellDictionary.from_points(two_blobs, geometry)
        with pytest.raises(KernelUnavailableError):
            RegionQueryEngine(dictionary, kernel="numba")

    def test_auto_fit_bit_identical_to_numpy(self, no_numba, two_blobs):
        kwargs = dict(eps=0.3, min_pts=10, num_partitions=4, seed=0)
        auto = RPDBSCAN(kernel="auto", **kwargs).fit(two_blobs)
        ref = RPDBSCAN(kernel="numpy", **kwargs).fit(two_blobs)
        assert auto.kernel == "numpy"
        np.testing.assert_array_equal(auto.labels, ref.labels)
        np.testing.assert_array_equal(auto.core_mask, ref.core_mask)

    def test_warmup_is_noop_without_numba(self, no_numba):
        # kernel="python" has no JIT; warm-up must report zero seconds.
        assert phase2.warmup(2) == 0.0


class TestCLI:
    def _write_points(self, tmp_path):
        path = tmp_path / "points.npy"
        rng = np.random.default_rng(0)
        np.save(path, rng.normal(size=(200, 2)))
        return str(path)

    def test_cluster_numba_unavailable_is_clean_error(
        self, no_numba, tmp_path, capsys
    ):
        path = self._write_points(tmp_path)
        code = main(
            ["cluster", path, "--eps", "0.4", "--min-pts", "5", "--kernel", "numba"]
        )
        captured = capsys.readouterr()
        assert code == 2
        assert "kernels" in captured.err
        assert "numba" in captured.err
        assert "Traceback" not in captured.err

    def test_cluster_auto_falls_back_and_reports_kernel(
        self, no_numba, tmp_path, capsys
    ):
        path = self._write_points(tmp_path)
        code = main(
            ["cluster", path, "--eps", "0.4", "--min-pts", "5", "--kernel", "auto"]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "kernel=numpy" in captured.out
