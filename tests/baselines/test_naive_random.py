"""Unit tests for the naive random-split baseline (Sec 2.2.1)."""

import numpy as np
import pytest

from repro.baselines.dbscan import ExactDBSCAN
from repro.baselines.naive_random import NaiveRandomDBSCAN
from repro.metrics import rand_index


class TestClustering:
    def test_well_separated_blobs(self, two_blobs):
        result = NaiveRandomDBSCAN(0.3, 10, 4, seed=0).fit(two_blobs)
        # Well-separated dense blobs survive the naive strategy.
        assert result.n_clusters == 2

    def test_loses_accuracy_vs_rp_dbscan(self, blobs_with_noise):
        # The paper's Sec 2.2.1 claim: naive random split is approximate.
        from repro import RPDBSCAN

        exact = ExactDBSCAN(0.25, 10).fit(blobs_with_noise)
        naive = NaiveRandomDBSCAN(0.25, 10, 8, seed=0).fit(blobs_with_noise)
        rp = RPDBSCAN(0.25, 10, 8).fit(blobs_with_noise)
        ri_naive = rand_index(exact.labels, naive.labels)
        ri_rp = rand_index(exact.labels, rp.labels)
        assert ri_rp >= ri_naive
        assert ri_rp >= 0.999

    def test_split_counts_are_disjoint_cover(self, two_blobs):
        result = NaiveRandomDBSCAN(0.3, 10, 5, seed=0).fit(two_blobs)
        assert sum(result.split_point_counts) == two_blobs.shape[0]

    def test_empty(self):
        result = NaiveRandomDBSCAN(0.3, 10, 4).fit(np.empty((0, 2)))
        assert result.n_clusters == 0

    def test_single_split_equals_local_exact(self, blobs_with_noise):
        naive = NaiveRandomDBSCAN(0.25, 10, 1, seed=0).fit(blobs_with_noise)
        exact = ExactDBSCAN(0.25, 10).fit(blobs_with_noise)
        assert rand_index(exact.labels, naive.labels) >= 0.999

    def test_validation(self):
        with pytest.raises(ValueError):
            NaiveRandomDBSCAN(0.3, 10, 0)
