"""Unit tests for NG-DBSCAN (vertex-centric approximate DBSCAN)."""

import numpy as np
import pytest

from repro.baselines.dbscan import ExactDBSCAN
from repro.baselines.ng_dbscan import NGDBSCAN
from repro.metrics import adjusted_rand_index


class TestClustering:
    def test_separated_blobs_found(self, two_blobs):
        result = NGDBSCAN(0.3, 10, seed=0).fit(two_blobs)
        assert result.n_clusters == 2
        assert result.noise_count <= 5

    def test_close_to_exact_on_easy_data(self, blobs_with_noise):
        exact = ExactDBSCAN(0.25, 10).fit(blobs_with_noise)
        ng = NGDBSCAN(0.25, 10, seed=0, max_supersteps=12).fit(blobs_with_noise)
        assert ng.n_clusters == exact.n_clusters
        assert adjusted_rand_index(exact.labels, ng.labels) >= 0.95

    def test_more_supersteps_no_worse(self, blobs_with_noise):
        exact = ExactDBSCAN(0.25, 10).fit(blobs_with_noise)
        few = NGDBSCAN(0.25, 10, seed=3, max_supersteps=1).fit(blobs_with_noise)
        many = NGDBSCAN(0.25, 10, seed=3, max_supersteps=12).fit(blobs_with_noise)
        score_few = adjusted_rand_index(exact.labels, few.labels)
        score_many = adjusted_rand_index(exact.labels, many.labels)
        assert score_many >= score_few - 0.05

    def test_sparse_data_is_noise(self, uniform_square):
        result = NGDBSCAN(0.01, 50, seed=0).fit(uniform_square)
        assert result.n_clusters == 0


class TestMechanics:
    def test_phase_seconds_reported(self, two_blobs):
        result = NGDBSCAN(0.3, 10).fit(two_blobs)
        assert "phase1 neighbor graph" in result.phase_seconds
        assert "phase2 clustering" in result.phase_seconds

    def test_deterministic_given_seed(self, two_blobs):
        a = NGDBSCAN(0.3, 10, seed=7).fit(two_blobs)
        b = NGDBSCAN(0.3, 10, seed=7).fit(two_blobs)
        np.testing.assert_array_equal(a.labels, b.labels)

    def test_empty(self):
        result = NGDBSCAN(0.3, 10).fit(np.empty((0, 2)))
        assert result.n_clusters == 0

    def test_tiny_input(self):
        pts = np.array([[0.0, 0.0], [0.1, 0.0], [5.0, 5.0]])
        result = NGDBSCAN(0.3, 2, seed=0).fit(pts)
        assert result.labels.shape == (3,)

    def test_validation(self):
        with pytest.raises(ValueError):
            NGDBSCAN(0.0, 5)
        with pytest.raises(ValueError):
            NGDBSCAN(1.0, 0)
        with pytest.raises(ValueError):
            NGDBSCAN(1.0, 5, k_neighbors=0)
