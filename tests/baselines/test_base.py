"""Unit tests for the shared BaselineResult type."""

import numpy as np

from repro.baselines.base import BaselineResult, relabel_dense


def make_result(labels, **kwargs):
    labels = np.asarray(labels, dtype=np.int64)
    return BaselineResult(
        labels=labels,
        core_mask=np.zeros(labels.shape[0], dtype=bool),
        n_clusters=int(labels.max() + 1) if labels.size else 0,
        **kwargs,
    )


class TestBaselineResult:
    def test_noise_count(self):
        result = make_result([0, -1, 1, -1])
        assert result.noise_count == 2

    def test_load_imbalance(self):
        result = make_result([0], split_task_seconds=[1.0, 4.0])
        assert result.load_imbalance == 4.0

    def test_load_imbalance_single_split(self):
        result = make_result([0], split_task_seconds=[2.0])
        assert result.load_imbalance == 1.0

    def test_points_processed_defaults_to_n(self):
        result = make_result([0, 1, 1])
        assert result.points_processed == 3

    def test_points_processed_with_duplication(self):
        result = make_result([0, 1, 1], split_point_counts=[3, 2])
        assert result.points_processed == 5

    def test_total_seconds(self):
        result = make_result([0], phase_seconds={"a": 1.0, "b": 0.5})
        assert result.total_seconds == 1.5


class TestRelabelDense:
    def test_gaps_removed(self):
        labels, k = relabel_dense(np.array([5, 5, 9, -1]))
        assert labels.tolist() == [0, 0, 1, -1]
        assert k == 2

    def test_all_noise(self):
        labels, k = relabel_dense(np.array([-1, -1]))
        assert labels.tolist() == [-1, -1]
        assert k == 0

    def test_empty(self):
        labels, k = relabel_dense(np.empty(0, dtype=np.int64))
        assert labels.shape == (0,) and k == 0

    def test_already_dense_unchanged(self):
        labels, k = relabel_dense(np.array([0, 1, 2, 0]))
        assert labels.tolist() == [0, 1, 2, 0]
        assert k == 3
