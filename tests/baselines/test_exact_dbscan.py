"""Unit tests for the exact DBSCAN baseline.

ExactDBSCAN is the ground truth of the whole evaluation, so it is itself
validated against a brute-force O(n^2) reference implementation.
"""

import numpy as np
import pytest

from repro.baselines.dbscan import ExactDBSCAN
from repro.graph.union_find import UnionFind
from repro.metrics import rand_index


def brute_force_dbscan(points, eps, min_pts):
    """Textbook O(n^2) DBSCAN used as the reference."""
    n = points.shape[0]
    diff = points[:, None, :] - points[None, :, :]
    dist = np.sqrt(np.einsum("ijk,ijk->ij", diff, diff))
    neighbors = dist <= eps
    core = neighbors.sum(axis=1) >= min_pts
    uf = UnionFind(np.nonzero(core)[0].tolist())
    for i in np.nonzero(core)[0]:
        for j in np.nonzero(neighbors[i] & core)[0]:
            uf.union(int(i), int(j))
    component = uf.component_labels()
    labels = np.full(n, -1, dtype=np.int64)
    for i, c in component.items():
        labels[i] = c
    for i in np.nonzero(~core)[0]:
        hits = np.nonzero(neighbors[i] & core)[0]
        if hits.size:
            nearest = hits[np.argmin(dist[i, hits])]
            labels[i] = component[int(nearest)]
    return labels, core


class TestAgainstBruteForce:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_random_blobs(self, seed):
        rng = np.random.default_rng(seed)
        pts = np.concatenate(
            [
                rng.normal([0, 0], 0.2, (120, 2)),
                rng.normal([2, 2], 0.2, (120, 2)),
                rng.uniform(-1, 3, (40, 2)),
            ]
        )
        eps, min_pts = 0.35, 8
        expected_labels, expected_core = brute_force_dbscan(pts, eps, min_pts)
        result = ExactDBSCAN(eps, min_pts).fit(pts)
        np.testing.assert_array_equal(result.core_mask, expected_core)
        # Same clusters up to renaming; border ties may differ, so use
        # the Rand index on a strict threshold.
        assert rand_index(result.labels, expected_labels) >= 0.999

    def test_3d(self):
        rng = np.random.default_rng(3)
        pts = np.concatenate(
            [rng.normal([0, 0, 0], 0.2, (100, 3)), rng.normal([3, 3, 3], 0.2, (100, 3))]
        )
        expected_labels, expected_core = brute_force_dbscan(pts, 0.5, 8)
        result = ExactDBSCAN(0.5, 8).fit(pts)
        np.testing.assert_array_equal(result.core_mask, expected_core)
        assert rand_index(result.labels, expected_labels) == 1.0

    def test_noise_identification(self):
        rng = np.random.default_rng(4)
        pts = rng.uniform(0, 10, (200, 2))  # sparse uniform: all noise
        result = ExactDBSCAN(0.1, 10).fit(pts)
        assert result.n_clusters == 0
        assert result.noise_count == 200


class TestEdgeCases:
    def test_empty(self):
        result = ExactDBSCAN(1.0, 5).fit(np.empty((0, 2)))
        assert result.n_clusters == 0

    def test_single_point_min_pts_1(self):
        result = ExactDBSCAN(1.0, 1).fit(np.array([[0.0, 0.0]]))
        assert result.n_clusters == 1
        assert result.labels[0] == 0

    def test_single_point_min_pts_2(self):
        result = ExactDBSCAN(1.0, 2).fit(np.array([[0.0, 0.0]]))
        assert result.labels[0] == -1

    def test_duplicate_points(self):
        pts = np.tile([1.0, 1.0], (20, 1))
        result = ExactDBSCAN(0.5, 10).fit(pts)
        assert result.n_clusters == 1
        assert result.noise_count == 0

    def test_two_points_at_exactly_eps(self):
        pts = np.array([[0.0, 0.0], [1.0, 0.0]])
        result = ExactDBSCAN(1.0, 2).fit(pts)  # inclusive boundary
        assert result.n_clusters == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            ExactDBSCAN(0.0, 5)
        with pytest.raises(ValueError):
            ExactDBSCAN(1.0, 0)
        with pytest.raises(ValueError):
            ExactDBSCAN(1.0, 5).fit(np.zeros(3))

    def test_labels_dense_from_zero(self, blobs_with_noise):
        result = ExactDBSCAN(0.25, 10).fit(blobs_with_noise)
        positive = np.unique(result.labels[result.labels >= 0])
        np.testing.assert_array_equal(positive, np.arange(result.n_clusters))
