"""Unit tests for the region-split framework and its three strategies."""

import numpy as np
import pytest

from repro.baselines.dbscan import ExactDBSCAN
from repro.baselines.region_split import (
    Region,
    RegionSplitDBSCAN,
    partition_cost_based,
    partition_even_split,
    partition_reduced_boundary,
)
from repro.baselines import CBPDBSCAN, ESPDBSCAN, RBPDBSCAN, SparkDBSCAN
from repro.metrics import rand_index


@pytest.fixture(scope="module")
def skewed_points():
    rng = np.random.default_rng(0)
    return np.concatenate(
        [
            rng.normal([0, 0], 0.1, (800, 2)),  # dominant dense blob
            rng.normal([5, 5], 0.3, (150, 2)),
            rng.uniform(-2, 7, (50, 2)),
        ]
    )


class TestRegion:
    def test_contains_half_open(self):
        region = Region((0.0, 0.0), (1.0, 1.0))
        pts = np.array([[0.0, 0.0], [1.0, 0.5], [0.5, 0.5]])
        assert region.contains(pts).tolist() == [True, False, True]

    def test_expanded_contains_halo(self):
        region = Region((0.0, 0.0), (1.0, 1.0))
        pts = np.array([[-0.05, 0.5], [-0.2, 0.5]])
        mask = region.contains_expanded(pts, eps=0.1)
        assert mask.tolist() == [True, False]

    def test_split(self):
        region = Region((-np.inf, -np.inf), (np.inf, np.inf))
        left, right = region.split(0, 2.0)
        assert left.hi[0] == 2.0 and right.lo[0] == 2.0

    def test_split_outside_rejected(self):
        region = Region((0.0,), (1.0,))
        with pytest.raises(ValueError):
            region.split(0, 5.0)


@pytest.mark.parametrize(
    "partitioner",
    [partition_even_split, partition_reduced_boundary, partition_cost_based],
)
class TestPartitioners:
    def test_regions_partition_the_space(self, partitioner, skewed_points):
        regions = partitioner(skewed_points, 6, eps=0.3)
        ownership = np.zeros(skewed_points.shape[0], dtype=int)
        for region in regions:
            ownership += region.contains(skewed_points).astype(int)
        assert np.all(ownership == 1)

    def test_region_count(self, partitioner, skewed_points):
        regions = partitioner(skewed_points, 5, eps=0.3)
        assert len(regions) == 5

    def test_single_region(self, partitioner, skewed_points):
        regions = partitioner(skewed_points, 1, eps=0.3)
        assert len(regions) == 1

    def test_rejects_bad_k(self, partitioner, skewed_points):
        with pytest.raises(ValueError):
            partitioner(skewed_points, 0, eps=0.3)


class TestEvenSplitBalance:
    def test_point_counts_roughly_equal(self, skewed_points):
        regions = partition_even_split(skewed_points, 4, eps=0.3)
        counts = sorted(int(r.contains(skewed_points).sum()) for r in regions)
        assert counts[-1] <= 2.2 * max(counts[0], 1)


class TestReducedBoundary:
    def test_fewer_halo_points_than_even_split(self, skewed_points):
        eps = 0.3
        halo = {}
        for name, part in (
            ("even", partition_even_split),
            ("rbp", partition_reduced_boundary),
        ):
            regions = part(skewed_points, 4, eps)
            total = sum(
                int(r.contains_expanded(skewed_points, eps).sum()) for r in regions
            )
            halo[name] = total
        assert halo["rbp"] <= halo["even"]


class TestClusteringCorrectness:
    @pytest.mark.parametrize("cls", [ESPDBSCAN, RBPDBSCAN, CBPDBSCAN, SparkDBSCAN])
    def test_matches_exact_dbscan(self, cls, skewed_points):
        eps, min_pts = 0.3, 10
        exact = ExactDBSCAN(eps, min_pts).fit(skewed_points)
        if cls is SparkDBSCAN:
            result = cls(eps, min_pts, 4).fit(skewed_points)
        else:
            result = cls(eps, min_pts, 4, rho=0.01).fit(skewed_points)
        assert result.n_clusters == exact.n_clusters
        assert rand_index(exact.labels, result.labels) >= 0.995

    def test_cluster_spanning_region_boundary(self):
        # One elongated cluster crossing every cut must stay one cluster.
        rng = np.random.default_rng(1)
        pts = np.stack(
            [np.linspace(0, 10, 1000), rng.normal(0, 0.05, 1000)], axis=1
        )
        result = ESPDBSCAN(0.3, 5, 4).fit(pts)
        assert result.n_clusters == 1
        assert result.noise_count == 0

    def test_duplication_reported(self, skewed_points):
        result = ESPDBSCAN(0.3, 10, 4).fit(skewed_points)
        assert result.points_processed >= skewed_points.shape[0]
        assert len(result.split_point_counts) == 4

    def test_task_times_recorded(self, skewed_points):
        result = CBPDBSCAN(0.3, 10, 4).fit(skewed_points)
        assert len(result.split_task_seconds) == 4
        assert result.load_imbalance >= 1.0

    def test_empty_input(self):
        result = ESPDBSCAN(0.3, 10, 4).fit(np.empty((0, 2)))
        assert result.n_clusters == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            RegionSplitDBSCAN(0.3, 10, local="telepathy")
