"""Unit tests for rho-approximate DBSCAN."""

import numpy as np
import pytest

from repro.baselines.dbscan import ExactDBSCAN
from repro.baselines.rho_dbscan import RhoDBSCAN
from repro.metrics import rand_index


class TestAccuracy:
    def test_matches_exact_at_small_rho(self, blobs_with_noise):
        exact = ExactDBSCAN(0.25, 10).fit(blobs_with_noise)
        approx = RhoDBSCAN(0.25, 10, rho=0.01).fit(blobs_with_noise)
        assert rand_index(exact.labels, approx.labels) >= 0.999

    def test_rho_quality_ordering(self, blobs_with_noise):
        # Smaller rho can only improve (or tie) agreement with exact.
        exact = ExactDBSCAN(0.25, 10).fit(blobs_with_noise)
        scores = [
            rand_index(
                exact.labels,
                RhoDBSCAN(0.25, 10, rho=rho).fit(blobs_with_noise).labels,
            )
            for rho in (0.5, 0.05)
        ]
        assert scores[1] >= scores[0] - 1e-6

    def test_cluster_count_stable_at_large_rho(self, two_blobs):
        result = RhoDBSCAN(0.3, 10, rho=0.25).fit(two_blobs)
        assert result.n_clusters == 2


class TestBehaviour:
    def test_empty(self):
        result = RhoDBSCAN(0.3, 10).fit(np.empty((0, 2)))
        assert result.n_clusters == 0

    def test_equivalent_to_rp_dbscan_k1(self, blobs_with_noise):
        from repro import RPDBSCAN

        rho = RhoDBSCAN(0.25, 10, rho=0.01).fit(blobs_with_noise)
        rp = RPDBSCAN(0.25, 10, num_partitions=1, rho=0.01).fit(blobs_with_noise)
        np.testing.assert_array_equal(rho.core_mask, rp.core_mask)
        assert rand_index(rho.labels, rp.labels) == 1.0

    def test_fit_predict(self, two_blobs):
        labels = RhoDBSCAN(0.3, 10).fit_predict(two_blobs)
        assert labels.shape == (two_blobs.shape[0],)

    def test_validation(self):
        with pytest.raises(ValueError):
            RhoDBSCAN(-1.0, 5)
        with pytest.raises(ValueError):
            RhoDBSCAN(1.0, 0)
