"""Unit tests for data I/O."""

import numpy as np
import pytest

from repro.data.io import load_labels, load_points, save_labels, save_points


class TestPointsRoundtrip:
    def test_npy(self, tmp_path):
        pts = np.random.default_rng(0).normal(size=(50, 3))
        path = tmp_path / "pts.npy"
        save_points(path, pts)
        np.testing.assert_array_equal(load_points(path), pts)

    def test_csv(self, tmp_path):
        pts = np.random.default_rng(1).normal(size=(20, 2))
        path = tmp_path / "pts.csv"
        save_points(path, pts)
        np.testing.assert_allclose(load_points(path), pts)

    def test_single_row_csv(self, tmp_path):
        pts = np.array([[1.0, 2.0, 3.0]])
        path = tmp_path / "one.csv"
        save_points(path, pts)
        assert load_points(path).shape == (1, 3)

    def test_single_column_npy(self, tmp_path):
        # Regression: a 1-d .npy payload (one scalar per point) must load
        # as an (n, 1) column, not stay 1-d or come back transposed.
        pts = np.array([[0.5], [1.5], [-2.0], [7.25]])
        path = tmp_path / "col.npy"
        save_points(path, pts)
        loaded = load_points(path)
        assert loaded.shape == (4, 1)
        np.testing.assert_array_equal(loaded, pts)

    def test_single_column_csv(self, tmp_path):
        # Regression: loadtxt flattens single-column CSVs to 1-d without
        # ndmin=2, which then reshaped into a (1, n) transpose downstream.
        pts = np.array([[0.5], [1.5], [-2.0], [7.25]])
        path = tmp_path / "col.csv"
        save_points(path, pts)
        loaded = load_points(path)
        assert loaded.shape == (4, 1)
        np.testing.assert_allclose(loaded, pts)

    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_points(tmp_path / "nope.npy")

    def test_rejects_1d(self, tmp_path):
        with pytest.raises(ValueError):
            save_points(tmp_path / "bad.npy", np.zeros(5))

    def test_creates_parent_dirs(self, tmp_path):
        path = tmp_path / "a" / "b" / "pts.npy"
        save_points(path, np.zeros((2, 2)))
        assert path.exists()


class TestLabelsRoundtrip:
    def test_roundtrip(self, tmp_path):
        labels = np.array([0, 1, -1, 2], dtype=np.int64)
        path = tmp_path / "labels.txt"
        save_labels(path, labels)
        np.testing.assert_array_equal(load_labels(path), labels)

    def test_single_label(self, tmp_path):
        path = tmp_path / "one.txt"
        save_labels(path, np.array([5]))
        assert load_labels(path).tolist() == [5]

    def test_npy_roundtrip(self, tmp_path):
        labels = np.array([3, -1, 0, 7, -1], dtype=np.int64)
        path = tmp_path / "labels.npy"
        save_labels(path, labels)
        loaded = load_labels(path)
        assert loaded.dtype == np.int64
        np.testing.assert_array_equal(loaded, labels)

    def test_npy_is_binary_int64(self, tmp_path):
        # .npy must save the binary numpy format, not text with a fancy
        # extension — np.load alone must read it back.
        path = tmp_path / "labels.npy"
        save_labels(path, np.array([1, 2, 3]))
        raw = np.load(path)
        assert raw.dtype == np.int64
        assert raw.tolist() == [1, 2, 3]

    def test_npy_flattens_column_vector(self, tmp_path):
        path = tmp_path / "labels.npy"
        save_labels(path, np.array([[1], [2], [-1]]))
        assert load_labels(path).shape == (3,)

    def test_text_and_npy_agree(self, tmp_path):
        labels = np.array([0, -1, 5], dtype=np.int64)
        save_labels(tmp_path / "a.txt", labels)
        save_labels(tmp_path / "a.npy", labels)
        np.testing.assert_array_equal(
            load_labels(tmp_path / "a.txt"), load_labels(tmp_path / "a.npy")
        )
