"""Unit tests for the real-world data-set stand-ins."""

import numpy as np
import pytest

from repro.data.datasets import (
    DATASETS,
    cosmo50_like,
    geolife_like,
    openstreetmap_like,
    teraclicklog_like,
)


class TestShapes:
    @pytest.mark.parametrize(
        "gen,dim",
        [
            (geolife_like, 3),
            (cosmo50_like, 3),
            (openstreetmap_like, 2),
            (teraclicklog_like, 13),
        ],
    )
    def test_shape_and_determinism(self, gen, dim):
        a = gen(500, seed=1)
        b = gen(500, seed=1)
        assert a.shape == (500, dim)
        np.testing.assert_array_equal(a, b)
        assert not np.array_equal(a, gen(500, seed=2))

    @pytest.mark.parametrize(
        "gen", [geolife_like, cosmo50_like, openstreetmap_like, teraclicklog_like]
    )
    def test_rejects_tiny_n(self, gen):
        with pytest.raises(ValueError):
            gen(5)


class TestGeoLifeSkew:
    def test_heavily_skewed(self):
        # The defining property (Sec 7.1.3): one dominant dense region.
        pts = geolife_like(5000, seed=0)
        median = np.median(pts, axis=0)
        dist = np.linalg.norm(pts - median, axis=1)
        # At least 60% of points are packed near the metro center while
        # the spread of the rest is orders of magnitude larger.
        near = np.quantile(dist, 0.6)
        far = dist.max()
        assert far / max(near, 1e-9) > 20


class TestTeraClickLogStructure:
    def test_low_intrinsic_dimensionality(self):
        # Per-cluster variance concentrates in few axes.
        pts = teraclicklog_like(3000, seed=0)
        stds = pts[:2700].std(axis=0)  # clustered part
        assert pts.shape[1] == 13


class TestSpecs:
    def test_all_names_present(self):
        assert set(DATASETS) == {
            "GeoLife",
            "Cosmo50",
            "OpenStreetMap",
            "TeraClickLog",
        }

    def test_spec_fields_consistent(self):
        for name, spec in DATASETS.items():
            assert spec.name == name
            pts = spec.generator(100, seed=0)
            assert pts.shape == (100, spec.dim)
            assert spec.eps10 > 0
            assert spec.min_pts >= 1

    def test_eps10_yields_around_ten_clusters(self):
        # The Sec 7.1.4 protocol: eps10 gives on the order of 10
        # clusters at bench scale (checked loosely: 4..25).
        from repro.baselines.rho_dbscan import RhoDBSCAN

        for spec in DATASETS.values():
            n = min(spec.default_n, 5000)
            pts = spec.generator(n, seed=0)
            min_pts = max(5, int(spec.min_pts * n / spec.default_n))
            result = RhoDBSCAN(spec.eps10, min_pts, rho=0.05).fit(pts)
            assert 3 <= result.n_clusters <= 30, (spec.name, result.n_clusters)
