"""Unit tests for the synthetic data generators."""

import numpy as np
import pytest

from repro.data.generators import (
    blobs,
    chameleon_like,
    gaussian_mixture,
    moons,
    ring,
    spiral,
)


class TestMoons:
    def test_shape_and_determinism(self):
        a = moons(1000, seed=0)
        b = moons(1000, seed=0)
        assert a.shape == (1000, 2)
        np.testing.assert_array_equal(a, b)

    def test_two_dense_groups(self):
        from repro.baselines.dbscan import ExactDBSCAN

        pts = moons(2000, noise=0.05, seed=1)
        result = ExactDBSCAN(0.12, 8).fit(pts)
        assert result.n_clusters == 2

    def test_odd_n(self):
        assert moons(1001, seed=0).shape == (1001, 2)

    def test_rejects_tiny_n(self):
        with pytest.raises(ValueError):
            moons(1)


class TestBlobs:
    def test_shape(self):
        assert blobs(500, centers=4, dim=3, seed=0).shape == (500, 3)

    def test_cluster_count(self):
        from repro.baselines.dbscan import ExactDBSCAN

        pts = blobs(3000, centers=3, std=0.25, spread=10.0, seed=3)
        result = ExactDBSCAN(0.35, 10).fit(pts)
        assert result.n_clusters == 3

    def test_rejects_bad_centers(self):
        with pytest.raises(ValueError):
            blobs(100, centers=0)


class TestShapes:
    def test_ring_radius(self):
        pts = ring(1000, radius=2.0, noise=0.01, seed=0)
        radii = np.linalg.norm(pts, axis=1)
        assert abs(radii.mean() - 2.0) < 0.05

    def test_spiral_bounded(self):
        pts = spiral(500, scale=1.0, seed=0)
        assert np.linalg.norm(pts, axis=1).max() < 1.5

    def test_chameleon_mix(self):
        pts = chameleon_like(5000, seed=0)
        assert pts.shape == (5000, 2)
        # Heterogeneous shapes spread across the canvas.
        assert np.ptp(pts[:, 0]) > 8 and np.ptp(pts[:, 1]) > 7

    def test_chameleon_rejects_tiny(self):
        with pytest.raises(ValueError):
            chameleon_like(10)


class TestGaussianMixture:
    def test_shape_and_range(self):
        pts = gaussian_mixture(2000, dim=4, alpha=1.0, seed=0)
        assert pts.shape == (2000, 4)
        # Means live in [0, 100]; with alpha=1 the points hug them.
        assert pts.min() > -10 and pts.max() < 110

    def test_alpha_controls_spread(self):
        # Appendix B.1: higher alpha concentrates points around means.
        loose = gaussian_mixture(5000, dim=3, alpha=1 / 8, components=1, seed=1)
        tight = gaussian_mixture(5000, dim=3, alpha=8.0, components=1, seed=1)
        assert tight.std(axis=0).mean() < loose.std(axis=0).mean()

    def test_std_matches_inverse_sqrt_alpha(self):
        alpha = 4.0
        pts = gaussian_mixture(20000, dim=2, alpha=alpha, components=1, seed=2)
        assert pts.std(axis=0).mean() == pytest.approx(1 / np.sqrt(alpha), rel=0.05)

    def test_component_count(self):
        pts = gaussian_mixture(1000, dim=2, components=10, alpha=8.0, seed=3)
        assert pts.shape == (1000, 2)

    def test_validation(self):
        with pytest.raises(ValueError):
            gaussian_mixture(100, components=0)
        with pytest.raises(ValueError):
            gaussian_mixture(100, alpha=0.0)
