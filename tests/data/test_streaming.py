"""Unit tests for the out-of-core point sources."""

import pickle

import numpy as np
import pytest

from repro.data.streaming import (
    ArraySource,
    ChunkedNpzSource,
    MemmapSource,
    PointSource,
    as_point_source,
    open_point_source,
    save_chunked_npz,
)


@pytest.fixture
def pts():
    return np.random.default_rng(0).normal(size=(137, 3))


def _npy_source(tmp_path, pts):
    path = tmp_path / "pts.npy"
    np.save(path, pts)
    return MemmapSource.from_npy(path, chunk_rows=32)


def _npz_source(tmp_path, pts):
    path = tmp_path / "pts.npz"
    save_chunked_npz(path, pts, chunk_rows=32)
    return ChunkedNpzSource(path)


SOURCE_BUILDERS = [
    lambda tmp_path, pts: ArraySource(pts, chunk_rows=32),
    _npy_source,
    _npz_source,
]


@pytest.mark.parametrize("build", SOURCE_BUILDERS, ids=["array", "memmap", "npz"])
class TestSourceContract:
    def test_shape(self, build, tmp_path, pts):
        source = build(tmp_path, pts)
        assert (source.num_points, source.dim) == pts.shape
        assert len(source) == pts.shape[0]

    def test_chunks_cover_in_order(self, build, tmp_path, pts):
        source = build(tmp_path, pts)
        rebuilt = np.full_like(pts, np.nan)
        prev_end = 0
        for start, chunk in source.iter_chunks():
            assert start == prev_end
            assert chunk.dtype == np.float64
            assert chunk.shape[0] >= 1
            rebuilt[start : start + chunk.shape[0]] = chunk
            prev_end = start + chunk.shape[0]
        assert prev_end == pts.shape[0]
        np.testing.assert_array_equal(rebuilt, pts)

    def test_take_matches_rows_in_order(self, build, tmp_path, pts):
        source = build(tmp_path, pts)
        idx = np.array([5, 0, 136, 64, 64, 31, 32], dtype=np.int64)
        got = source.take(idx)
        assert got.dtype == np.float64
        np.testing.assert_array_equal(got, pts[idx])

    def test_take_empty(self, build, tmp_path, pts):
        source = build(tmp_path, pts)
        assert source.take(np.empty(0, dtype=np.int64)).shape == (0, 3)

    def test_take_returns_fresh_writable_rows(self, build, tmp_path, pts):
        source = build(tmp_path, pts)
        got = source.take(np.arange(4))
        got += 1.0  # must not raise, must not corrupt the source
        np.testing.assert_array_equal(source.take(np.arange(4)), pts[:4])

    def test_materialize(self, build, tmp_path, pts):
        np.testing.assert_array_equal(build(tmp_path, pts).materialize(), pts)

    def test_pickle_roundtrip(self, build, tmp_path, pts):
        source = build(tmp_path, pts)
        clone = pickle.loads(pickle.dumps(source))
        np.testing.assert_array_equal(clone.take(np.arange(10)), pts[:10])


class TestMemmapSource:
    def test_descriptor_pickle_is_small(self, tmp_path):
        pts = np.random.default_rng(1).normal(size=(100_000, 3))
        path = tmp_path / "big.npy"
        np.save(path, pts)
        source = MemmapSource.from_npy(path)
        # The pickle carries a descriptor, never the 2.4 MB payload.
        assert len(pickle.dumps(source)) < 2048

    def test_one_dimensional_npy_is_a_column(self, tmp_path):
        path = tmp_path / "col.npy"
        np.save(path, np.arange(9, dtype=np.float64))
        source = MemmapSource.from_npy(path)
        assert (source.num_points, source.dim) == (9, 1)
        np.testing.assert_array_equal(
            source.take(np.array([3, 1])), [[3.0], [1.0]]
        )

    def test_from_memmap(self, tmp_path):
        pts = np.random.default_rng(2).normal(size=(40, 2))
        path = tmp_path / "mm.npy"
        np.save(path, pts)
        mm = np.load(path, mmap_mode="r")
        source = MemmapSource.from_memmap(mm)
        np.testing.assert_array_equal(source.materialize(), pts)

    def test_rejects_anonymous_memmap(self):
        # A view cast to np.memmap has no backing file (filename=None).
        anonymous = np.zeros((2, 2)).view(np.memmap)
        with pytest.raises(ValueError, match="backing file"):
            MemmapSource.from_memmap(anonymous)


class TestChunkedNpz:
    def test_empty_dataset_yields_no_chunks(self, tmp_path):
        path = tmp_path / "empty.npz"
        save_chunked_npz(path, np.empty((0, 2)))
        source = ChunkedNpzSource(path)
        assert source.num_points == 0
        assert list(source.iter_chunks()) == []

    def test_rejects_plain_npz(self, tmp_path):
        path = tmp_path / "plain.npz"
        np.savez(path, stuff=np.zeros(3))
        with pytest.raises(ValueError, match="chunked point container"):
            ChunkedNpzSource(path)


class TestCoercion:
    def test_as_point_source_passthrough(self, pts):
        source = ArraySource(pts)
        assert as_point_source(source) is source

    def test_as_point_source_wraps_arrays(self, pts):
        assert isinstance(as_point_source(pts), ArraySource)

    def test_as_point_source_routes_memmaps(self, tmp_path, pts):
        path = tmp_path / "pts.npy"
        np.save(path, pts)
        mm = np.load(path, mmap_mode="r")
        source = as_point_source(mm)
        assert isinstance(source, MemmapSource)
        # The routing exists so pickling ships a descriptor, not bytes.
        assert len(pickle.dumps(source)) < 2048

    def test_open_point_source_by_extension(self, tmp_path, pts):
        npy = tmp_path / "a.npy"
        np.save(npy, pts)
        npz = tmp_path / "a.npz"
        save_chunked_npz(npz, pts)
        csv = tmp_path / "a.csv"
        np.savetxt(csv, pts, delimiter=",")
        assert isinstance(open_point_source(npy), MemmapSource)
        assert isinstance(open_point_source(npy, memmap=False), ArraySource)
        assert isinstance(open_point_source(npz), ChunkedNpzSource)
        assert isinstance(open_point_source(csv), ArraySource)
        for path in (npy, npz, csv):
            got = open_point_source(path).materialize()
            np.testing.assert_allclose(got, pts)
        assert issubclass(ChunkedNpzSource, PointSource)
