"""Shared fixtures: small, deterministic workloads for the test suite."""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture(scope="session")
def two_blobs() -> np.ndarray:
    """Two well-separated 2-d Gaussian blobs (600 points)."""
    rng = np.random.default_rng(42)
    return np.concatenate(
        [
            rng.normal([0.0, 0.0], 0.1, (300, 2)),
            rng.normal([3.0, 0.0], 0.1, (300, 2)),
        ]
    )


@pytest.fixture(scope="session")
def blobs_with_noise() -> np.ndarray:
    """Three blobs plus uniform background noise (1,280 points)."""
    rng = np.random.default_rng(7)
    return np.concatenate(
        [
            rng.normal([0.0, 0.0], 0.12, (400, 2)),
            rng.normal([3.0, 0.0], 0.12, (400, 2)),
            rng.normal([1.5, 2.5], 0.2, (400, 2)),
            rng.uniform(-1.0, 4.0, (80, 2)),
        ]
    )


@pytest.fixture(scope="session")
def three_d_blobs() -> np.ndarray:
    """Two 3-d blobs (400 points)."""
    rng = np.random.default_rng(3)
    return np.concatenate(
        [
            rng.normal([0.0, 0.0, 0.0], 0.15, (200, 3)),
            rng.normal([4.0, 4.0, 4.0], 0.15, (200, 3)),
        ]
    )


@pytest.fixture(scope="session")
def uniform_square() -> np.ndarray:
    """Uniform 2-d points in the unit square (500 points)."""
    rng = np.random.default_rng(11)
    return rng.uniform(0.0, 1.0, (500, 2))
