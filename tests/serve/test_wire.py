"""Serving payload codecs: round trips and malformed-input rejection."""

import numpy as np
import pytest

from repro.serve import wire


class TestPointsCodec:
    def test_round_trip(self):
        pts = np.arange(12, dtype=np.float64).reshape(4, 3) * 0.5
        out = wire.decode_points(wire.encode_points(pts))
        assert out.dtype == np.float64
        np.testing.assert_array_equal(out, pts)

    def test_round_trip_preserves_exact_bits(self):
        rng = np.random.default_rng(3)
        pts = rng.normal(size=(100, 5))
        out = wire.decode_points(wire.encode_points(pts))
        assert out.tobytes() == pts.tobytes()

    def test_empty_block_round_trips(self):
        pts = np.empty((0, 4), dtype=np.float64)
        out = wire.decode_points(wire.encode_points(pts))
        assert out.shape == (0, 4)

    def test_non_2d_rejected(self):
        with pytest.raises(wire.WireFormatError):
            wire.encode_points(np.zeros(3))

    def test_truncated_header_rejected(self):
        with pytest.raises(wire.WireFormatError, match="truncated"):
            wire.decode_points(b"\x00" * 4)

    def test_length_mismatch_rejected(self):
        payload = wire.encode_points(np.zeros((2, 2)))
        with pytest.raises(wire.WireFormatError, match="expected"):
            wire.decode_points(payload[:-1])

    def test_zero_dim_rejected(self):
        import struct

        payload = struct.pack(">QI", 0, 0)
        with pytest.raises(wire.WireFormatError, match="at least one axis"):
            wire.decode_points(payload)

    def test_absurd_count_rejected_before_allocation(self):
        import struct

        payload = struct.pack(">QI", 1 << 40, 3)
        with pytest.raises(wire.WireFormatError, match="exceed"):
            wire.decode_points(payload)

    def test_oversized_encode_rejected(self):
        # A broadcast view has an absurd row count but no backing
        # allocation; the bound must trip before any materialization.
        big = np.broadcast_to(
            np.zeros((1, 2)), (wire.MAX_POINTS_PER_REQUEST + 1, 2)
        )
        with pytest.raises(wire.WireFormatError, match="exceed"):
            wire.encode_points(big)


class TestLabelsCodec:
    def test_round_trip_carries_epoch(self):
        labels = np.array([0, -1, 7, 2], dtype=np.int64)
        epoch, out = wire.decode_labels(wire.encode_labels(5, labels))
        assert epoch == 5
        np.testing.assert_array_equal(out, labels)

    def test_non_1d_rejected(self):
        with pytest.raises(wire.WireFormatError):
            wire.encode_labels(1, np.zeros((2, 2), dtype=np.int64))

    def test_truncated_rejected(self):
        payload = wire.encode_labels(1, np.arange(3, dtype=np.int64))
        with pytest.raises(wire.WireFormatError):
            wire.decode_labels(payload[:-2])


class TestControlCodecs:
    def test_error_round_trip(self):
        assert wire.decode_error(wire.encode_error("överload")) == "överload"

    def test_obj_round_trip(self):
        obj = {"epoch": 3, "counts": [1, 2], "nested": {"ok": True}}
        assert wire.decode_obj(wire.encode_obj(obj)) == obj
