"""Shared fixtures of the serving-plane suite.

Every test here deals in processes and shared-memory segments, so the
module-wide leak guard of the shm suite applies to all of them: a test
that exits while a ``rpdbscan_*`` segment is still linked in
``/dev/shm`` fails, whatever else it asserted.
"""

import glob

import numpy as np
import pytest

from repro.core.rp_dbscan import RPDBSCAN
from repro.engine.shm import SHM_NAME_PREFIX


def live_segments() -> list[str]:
    """Names of this machine's live RP-DBSCAN shared-memory segments."""
    return sorted(glob.glob(f"/dev/shm/{SHM_NAME_PREFIX}*"))


@pytest.fixture(autouse=True)
def no_leaked_segments():
    """Every serving test must clean up its segments."""
    assert live_segments() == []
    yield
    assert live_segments() == []


@pytest.fixture(scope="session")
def fitted_state():
    """One small fitted ClusterState shared by the serving suite.

    Two well-separated gaussian blobs: predictable labels (one cluster
    per blob), plenty of core points, and far-away space left over for
    ingest tests to grow a third cluster into.  Session-scoped and
    **read-only** — tests that mutate (ingest) take ``mutable_state``.
    """
    rng = np.random.default_rng(7)
    points = np.concatenate(
        [
            rng.normal(0.0, 0.1, size=(240, 2)),
            rng.normal(4.0, 0.1, size=(240, 2)),
        ]
    )
    result = RPDBSCAN(eps=0.3, min_pts=10, seed=0).fit(points)
    assert result.state is not None
    assert result.n_clusters == 2
    return result.state


@pytest.fixture()
def mutable_state(fitted_state):
    """A private copy of the fitted state (safe to ``ingest`` into)."""
    from repro.core.serialization import (
        deserialize_cluster_state,
        serialize_cluster_state,
    )

    return deserialize_cluster_state(serialize_cluster_state(fitted_state))


@pytest.fixture()
def query_points():
    """Queries hitting both blobs plus guaranteed noise."""
    rng = np.random.default_rng(21)
    return np.concatenate(
        [
            rng.normal(0.0, 0.1, size=(40, 2)),
            rng.normal(4.0, 0.1, size=(40, 2)),
            np.array([[100.0, 100.0], [-50.0, 20.0]]),
        ]
    )
