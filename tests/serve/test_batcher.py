"""MicroBatcher semantics: fusion, scatter-back, flush policy, failure."""

import asyncio

import numpy as np
import pytest

from repro.serve.batcher import MicroBatcher


class RecordingDispatch:
    """A dispatch stub that records fused batches and answers row sums."""

    def __init__(self, *, epoch: int = 1, delay_s: float = 0.0):
        self.batches: list[np.ndarray] = []
        self.epoch = epoch
        self.delay_s = delay_s

    async def __call__(self, fused):
        self.batches.append(np.array(fused))
        if self.delay_s:
            await asyncio.sleep(self.delay_s)
        return self.epoch, fused.sum(axis=1).astype(np.int64)


def _block(values):
    """One (m, 1) request block from a list of scalars."""
    return np.asarray(values, dtype=np.float64).reshape(-1, 1)


class TestFusionAndScatter:
    def test_concurrent_requests_fuse_into_one_dispatch(self):
        dispatch = RecordingDispatch()

        async def go():
            batcher = MicroBatcher(dispatch, window_s=0.005, max_batch=1024)
            results = await asyncio.gather(
                batcher.submit(_block([1, 2])),
                batcher.submit(_block([3])),
                batcher.submit(_block([4, 5, 6])),
            )
            return results

        results = asyncio.run(go())
        assert len(dispatch.batches) == 1
        assert dispatch.batches[0].shape == (6, 1)
        # Scatter-back is positional: each request gets exactly its rows.
        np.testing.assert_array_equal(results[0][1], [1, 2])
        np.testing.assert_array_equal(results[1][1], [3])
        np.testing.assert_array_equal(results[2][1], [4, 5, 6])
        assert all(epoch == 1 for epoch, _ in results)

    def test_sequential_requests_each_dispatch_alone(self):
        dispatch = RecordingDispatch()

        async def go():
            batcher = MicroBatcher(dispatch, window_s=0.0005, max_batch=1024)
            for v in ([1], [2], [3]):
                await batcher.submit(_block(v))

        asyncio.run(go())
        assert len(dispatch.batches) == 3

    def test_labels_bit_identical_through_fusion(self):
        """Fused dispatch must answer exactly what per-request would."""
        dispatch = RecordingDispatch()
        rng = np.random.default_rng(5)
        blocks = [rng.normal(size=(m, 3)) for m in (1, 4, 2, 7)]

        async def go():
            batcher = MicroBatcher(dispatch, window_s=0.01, max_batch=4096)
            return await asyncio.gather(
                *(batcher.submit(b) for b in blocks)
            )

        results = asyncio.run(go())
        for block, (_, labels) in zip(blocks, results):
            np.testing.assert_array_equal(
                labels, block.sum(axis=1).astype(np.int64)
            )


class TestFlushPolicy:
    def test_max_batch_flushes_without_waiting(self):
        dispatch = RecordingDispatch()

        async def go():
            # A window long enough that only the size cap can flush it.
            batcher = MicroBatcher(dispatch, window_s=30.0, max_batch=4)
            return await asyncio.gather(
                batcher.submit(_block([1, 2])),
                batcher.submit(_block([3, 4])),
            )

        asyncio.run(go())
        assert len(dispatch.batches) == 1
        assert dispatch.batches[0].shape[0] == 4

    def test_window_zero_is_request_at_a_time(self):
        dispatch = RecordingDispatch()

        async def go():
            batcher = MicroBatcher(dispatch, window_s=0.0, max_batch=4096)
            await asyncio.gather(
                batcher.submit(_block([1])), batcher.submit(_block([2]))
            )

        asyncio.run(go())
        assert len(dispatch.batches) == 2

    def test_oversized_single_request_dispatches_unsplit(self):
        dispatch = RecordingDispatch()

        async def go():
            batcher = MicroBatcher(dispatch, window_s=0.01, max_batch=4)
            _, labels = await batcher.submit(_block(range(32)))
            return labels

        labels = asyncio.run(go())
        assert labels.shape == (32,)
        assert len(dispatch.batches) == 1

    def test_on_batch_hook_sees_request_and_point_counts(self):
        seen = []
        dispatch = RecordingDispatch()

        async def go():
            batcher = MicroBatcher(
                dispatch,
                window_s=0.005,
                max_batch=1024,
                on_batch=lambda reqs, pts: seen.append((reqs, pts)),
            )
            await asyncio.gather(
                batcher.submit(_block([1, 2])), batcher.submit(_block([3]))
            )

        asyncio.run(go())
        assert seen == [(2, 3)]

    def test_invalid_parameters_rejected(self):
        dispatch = RecordingDispatch()
        with pytest.raises(ValueError):
            MicroBatcher(dispatch, window_s=-1.0)
        with pytest.raises(ValueError):
            MicroBatcher(dispatch, max_batch=0)

    def test_empty_request_rejected(self):
        async def go():
            batcher = MicroBatcher(RecordingDispatch())
            await batcher.submit(np.empty((0, 2)))

        with pytest.raises(ValueError):
            asyncio.run(go())


class TestFailureAndAccounting:
    def test_dispatch_failure_fails_every_request_of_the_batch(self):
        async def boom(fused):
            raise RuntimeError("kernel exploded")

        async def go():
            batcher = MicroBatcher(boom, window_s=0.005, max_batch=1024)
            return await asyncio.gather(
                batcher.submit(_block([1])),
                batcher.submit(_block([2])),
                return_exceptions=True,
            )

        results = asyncio.run(go())
        assert all(isinstance(r, RuntimeError) for r in results)

    def test_pending_requests_tracks_in_flight_work(self):
        dispatch = RecordingDispatch(delay_s=0.02)

        async def go():
            batcher = MicroBatcher(dispatch, window_s=0.001, max_batch=1024)
            tasks = [
                asyncio.ensure_future(batcher.submit(_block([i])))
                for i in range(3)
            ]
            await asyncio.sleep(0.005)
            mid_flight = batcher.pending_requests
            await asyncio.gather(*tasks)
            return mid_flight, batcher.pending_requests

        mid_flight, after = asyncio.run(go())
        assert mid_flight == 3
        assert after == 0

    def test_drain_completes_everything(self):
        dispatch = RecordingDispatch(delay_s=0.01)

        async def go():
            batcher = MicroBatcher(dispatch, window_s=5.0, max_batch=1024)
            tasks = [
                asyncio.ensure_future(batcher.submit(_block([i])))
                for i in range(4)
            ]
            await asyncio.sleep(0)  # let submits enqueue
            await batcher.drain()
            assert all(t.done() for t in tasks)
            return batcher.batches_dispatched

        assert asyncio.run(go()) == 1
