"""Concurrent readers of one shm-resident model (satellite of the
serving plane): the same segment must serve bit-identical labels to
many threads and many processes at once, and leak nothing."""

import threading
from multiprocessing import get_context

import numpy as np

from repro.core.prediction import ClusterModel
from repro.engine.shm import (
    attach_segment,
    create_segment,
    destroy_segment,
    export_broadcast,
    import_broadcast,
)

from .conftest import live_segments


def _read_labels_from_segment(blob, handle, points, conn):
    """Child-process body: attach read-only, predict, ship labels back."""
    shm = attach_segment(handle)
    try:
        model = import_broadcast(blob, handle, shm)
        conn.send(model.predict(points))
    finally:
        shm.close()
        conn.close()


class TestConcurrentShmReaders:
    def test_threaded_readers_are_bit_identical(
        self, fitted_state, query_points
    ):
        model = ClusterModel.from_state(fitted_state)
        offline = model.predict(query_points)
        blob, flats = export_broadcast(model)
        assert flats, "a ClusterModel must hoist its table into shm"
        handle, shm = create_segment(flats)
        try:
            attached = import_broadcast(blob, handle, shm)
            results = [None] * 8

            def reader(i):
                results[i] = attached.predict(query_points)

            threads = [
                threading.Thread(target=reader, args=(i,)) for i in range(8)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=30.0)
            for labels in results:
                assert labels is not None
                np.testing.assert_array_equal(labels, offline)
        finally:
            destroy_segment(shm)
        assert live_segments() == []

    def test_multiprocess_readers_share_one_segment(
        self, fitted_state, query_points
    ):
        model = ClusterModel.from_state(fitted_state)
        offline = model.predict(query_points)
        blob, flats = export_broadcast(model)
        handle, shm = create_segment(flats)
        ctx = get_context("fork")
        try:
            assert len(live_segments()) == 1
            pipes, procs = [], []
            for _ in range(3):
                parent, child = ctx.Pipe(duplex=False)
                proc = ctx.Process(
                    target=_read_labels_from_segment,
                    args=(blob, handle, query_points, child),
                )
                proc.start()
                child.close()
                pipes.append(parent)
                procs.append(proc)
            for parent in pipes:
                np.testing.assert_array_equal(parent.recv(), offline)
            for proc in procs:
                proc.join(timeout=30.0)
                assert proc.exitcode == 0
            # All readers attached the one existing segment: nothing new
            # was created in /dev/shm.
            assert len(live_segments()) == 1
        finally:
            destroy_segment(shm)
        assert live_segments() == []

    def test_mixed_readers_while_driver_predicts(
        self, fitted_state, query_points
    ):
        """Driver thread, local threads, and a child process all read the
        same resident model concurrently."""
        model = ClusterModel.from_state(fitted_state)
        offline = model.predict(query_points)
        blob, flats = export_broadcast(model)
        handle, shm = create_segment(flats)
        ctx = get_context("fork")
        try:
            attached = import_broadcast(blob, handle, shm)
            parent, child = ctx.Pipe(duplex=False)
            proc = ctx.Process(
                target=_read_labels_from_segment,
                args=(blob, handle, query_points, child),
            )
            proc.start()
            child.close()
            thread_out = []
            thread = threading.Thread(
                target=lambda: thread_out.append(
                    attached.predict(query_points)
                )
            )
            thread.start()
            driver_labels = attached.predict(query_points)
            thread.join(timeout=30.0)
            np.testing.assert_array_equal(driver_labels, offline)
            np.testing.assert_array_equal(thread_out[0], offline)
            np.testing.assert_array_equal(parent.recv(), offline)
            proc.join(timeout=30.0)
        finally:
            destroy_segment(shm)
        assert live_segments() == []
