"""PredictorPool: shm installs, epoch swaps, worker death, teardown."""

import numpy as np
import pytest

from repro.core.prediction import ClusterModel
from repro.serve.pool import PredictorPool, ServePoolError

from .conftest import live_segments


def _model(fitted_state, **kwargs):
    return ClusterModel.from_state(fitted_state, **kwargs)


class TestInstall:
    def test_install_reports_shm_segment_and_warmup(self, fitted_state):
        with PredictorPool(num_workers=2) as pool:
            stats = pool.install(_model(fitted_state))
            assert stats.epoch == 1
            # The model payload is a FlatCellDictionary, so the install
            # must ride the zero-copy segment, not the pickle fallback.
            assert stats.segment_bytes > 0
            # The pickled shell excludes the hoisted columns.
            assert 0 < stats.payload_bytes < stats.segment_bytes
            assert stats.warmup_seconds >= 0.0
            assert len(stats.workers) == 2
            assert len({pid for pid, _, _ in stats.workers}) == 2
            assert len(live_segments()) == 1
        assert live_segments() == []

    def test_predict_before_install_raises(self):
        with PredictorPool(num_workers=1) as pool:
            with pytest.raises(ServePoolError, match="no model"):
                pool.submit_predict(np.zeros((1, 2)))

    def test_reinstall_bumps_epoch_and_replaces_segment(self, fitted_state):
        with PredictorPool(num_workers=1) as pool:
            assert pool.install(_model(fitted_state)).epoch == 1
            first_segment = live_segments()
            assert pool.install(_model(fitted_state)).epoch == 2
            second_segment = live_segments()
            # Old epoch's segment is unlinked once all workers acked.
            assert len(second_segment) == 1
            assert second_segment != first_segment
        assert live_segments() == []


class TestPredict:
    def test_pool_labels_match_offline_predict(
        self, fitted_state, query_points
    ):
        offline = _model(fitted_state).predict(query_points)
        with PredictorPool(num_workers=2) as pool:
            pool.install(_model(fitted_state))
            for _ in range(4):  # hit both workers round-robin
                epoch, labels = pool.predict(query_points)
                assert epoch == 1
                np.testing.assert_array_equal(labels, offline)

    def test_predict_error_is_per_job_not_fatal(
        self, fitted_state, query_points
    ):
        with PredictorPool(num_workers=1) as pool:
            pool.install(_model(fitted_state))
            with pytest.raises(ServePoolError, match="points must be"):
                pool.predict(np.zeros((2, 9)))  # wrong dim
            # Same worker still answers the next job.
            _, labels = pool.predict(query_points)
            assert labels.shape == (query_points.shape[0],)

    def test_closed_pool_refuses_work(self, fitted_state):
        pool = PredictorPool(num_workers=1)
        pool.install(_model(fitted_state))
        pool.close()
        with pytest.raises(ServePoolError, match="closed"):
            pool.submit_predict(np.zeros((1, 2)))


class TestWorkerDeath:
    def test_dead_worker_respawns_with_current_model(
        self, fitted_state, query_points
    ):
        offline = _model(fitted_state).predict(query_points)
        with PredictorPool(num_workers=1) as pool:
            pool.install(_model(fitted_state))
            worker = pool._workers[0]
            old_pid = worker.pid
            worker._process.terminate()
            worker._process.join(timeout=5.0)
            # The in-flight job fails; the pool heals itself.
            with pytest.raises(ServePoolError, match="lost"):
                pool.predict(query_points)
            assert pool.respawns == 1
            assert worker.pid != old_pid
            epoch, labels = pool.predict(query_points)
            assert epoch == 1
            np.testing.assert_array_equal(labels, offline)
        assert live_segments() == []
