"""End-to-end predict server: TCP round trips, batching, ingest swap,
admission control, stats, shutdown — all over the real socket path."""

import threading

import numpy as np
import pytest

from repro.core.prediction import ClusterModel
from repro.obs.report import render_serving_report, serving_ledger_rows
from repro.serve import (
    RequestRejected,
    ServeClient,
    ServeConfig,
    running_server,
)

from .conftest import live_segments


class TestPredictPath:
    def test_served_labels_bit_identical_to_offline(
        self, fitted_state, query_points
    ):
        offline = ClusterModel.from_state(fitted_state).predict(query_points)
        with running_server(fitted_state) as server:
            with ServeClient(server.host, server.port) as client:
                labels = client.predict(query_points)
                assert client.last_epoch == 1
                np.testing.assert_array_equal(labels, offline)
        assert live_segments() == []

    def test_many_clients_fuse_into_batches(self, fitted_state, query_points):
        offline = ClusterModel.from_state(fitted_state).predict(query_points)
        config = ServeConfig(workers=2, batch_window_s=0.005, max_batch=4096)
        n_clients, per_client = 8, 5
        failures: list[Exception] = []

        def client_loop(host, port):
            try:
                with ServeClient(host, port) as client:
                    for _ in range(per_client):
                        labels = client.predict(query_points)
                        np.testing.assert_array_equal(labels, offline)
            except Exception as exc:  # pragma: no cover - surfaced below
                failures.append(exc)

        with running_server(fitted_state, config) as server:
            threads = [
                threading.Thread(
                    target=client_loop, args=(server.host, server.port)
                )
                for _ in range(n_clients)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=60.0)
            with ServeClient(server.host, server.port) as client:
                stats = client.stats()
        assert failures == []
        total = n_clients * per_client
        assert stats["snapshot"]["serve.requests"] == total
        assert (
            stats["snapshot"]["serve.points"]
            == total * query_points.shape[0]
        )
        # Micro-batching must have fused at least some requests: fewer
        # dispatches than requests.
        assert 0 < stats["batches_dispatched"] < total

    def test_wrong_dim_is_rejected_but_connection_survives(
        self, fitted_state, query_points
    ):
        with running_server(fitted_state) as server:
            with ServeClient(server.host, server.port) as client:
                with pytest.raises(RequestRejected, match="dim 5"):
                    client.predict(np.zeros((3, 5)))
                labels = client.predict(query_points)
                assert labels.shape == (query_points.shape[0],)
                stats = client.stats()
        assert stats["snapshot"]["serve.errors"] == 1


class TestAdmissionControl:
    def test_overload_rejects_instead_of_queueing(
        self, fitted_state, query_points
    ):
        config = ServeConfig(max_pending=0)  # degenerate: reject everything
        with running_server(fitted_state, config) as server:
            with ServeClient(server.host, server.port) as client:
                with pytest.raises(RequestRejected, match="overloaded"):
                    client.predict(query_points)
                # Rejection is per-request: the connection still serves
                # control traffic.
                stats = client.stats()
        assert stats["snapshot"]["serve.rejected"] == 1
        assert "serve.requests" not in stats["snapshot"]


class TestIngestSwap:
    def test_ingest_swaps_model_under_new_epoch(self, mutable_state):
        rng = np.random.default_rng(11)
        new_blob = rng.normal(8.0, 0.05, size=(80, 2))
        probe = np.array([[8.0, 8.0]])
        with running_server(mutable_state) as server:
            with ServeClient(server.host, server.port) as client:
                # Before ingest the new region is noise under epoch 1.
                assert client.predict(probe).tolist() == [-1]
                assert client.last_epoch == 1
                ack = client.ingest(new_blob)
                assert ack["epoch"] == 2
                assert ack["num_new_points"] == 80
                assert ack["n_clusters"] == 3
                # After the swap the same probe joins the new cluster,
                # and the reply carries the new epoch.
                assert client.predict(probe).tolist() != [-1]
                assert client.last_epoch == 2
                stats = client.stats()
        assert stats["epoch"] == 2
        assert stats["snapshot"]["serve.ingests"] == 1
        assert live_segments() == []

    def test_served_labels_match_offline_after_swap(self, mutable_state):
        rng = np.random.default_rng(13)
        new_blob = rng.normal(-6.0, 0.05, size=(60, 2))
        queries = np.concatenate(
            [rng.normal(-6.0, 0.05, size=(20, 2)), rng.normal(0, 0.1, (20, 2))]
        )
        with running_server(mutable_state) as server:
            with ServeClient(server.host, server.port) as client:
                client.ingest(new_blob)
                served = client.predict(queries)
            # The server's state was refitted in place; offline predict
            # of that same state must agree bit for bit.
            offline = ClusterModel.from_state(mutable_state).predict(queries)
        np.testing.assert_array_equal(served, offline)


class TestStatsAndReport:
    def test_stats_snapshot_renders_as_serving_ledger(
        self, fitted_state, query_points
    ):
        with running_server(fitted_state) as server:
            with ServeClient(server.host, server.port) as client:
                for _ in range(3):
                    client.predict(query_points)
                stats = client.stats()
        snapshot = stats["snapshot"]
        rows = serving_ledger_rows(snapshot)
        labels = [row[0] for row in rows]
        assert "requests answered" in labels
        assert "latency p99" in labels
        assert "model install (setup)" in labels
        report = render_serving_report(snapshot)
        assert "serving ledger" in report
        # Latency histogram observed one sample per request.
        assert snapshot["serve.latency_seconds"]["total"] == 3
        assert snapshot["serve.queue_depth_peak"] >= 1
        # Warm-up ran at install time, before the socket opened.
        assert snapshot["setup_seconds.serve_warmup"] >= 0.0

    def test_empty_snapshot_renders_placeholder(self):
        assert "no serving traffic" in render_serving_report({})


class TestShutdown:
    def test_client_shutdown_stops_the_server(self, fitted_state):
        with running_server(fitted_state) as server:
            with ServeClient(server.host, server.port) as client:
                client.shutdown()
            server._stopped  # context manager exit must not double-stop
        assert live_segments() == []
