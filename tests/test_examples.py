"""Smoke checks for the example scripts.

Each example is importable (no syntax/import rot) and exposes a
``main``.  Full executions are exercised by the benchmark/docs workflow,
not the unit suite, because the examples run at demo scale.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_imports_and_has_main(path):
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
    finally:
        sys.modules.pop(spec.name, None)
    assert callable(getattr(module, "main", None)), f"{path.name} lacks main()"
    assert module.__doc__, f"{path.name} lacks a module docstring"


def test_expected_examples_present():
    names = {p.stem for p in EXAMPLES}
    assert {
        "quickstart",
        "skewed_geodata",
        "accuracy_vs_rho",
        "scalability_simulation",
        "highdim_clicklog",
        "broadcast_and_predict",
    } <= names
