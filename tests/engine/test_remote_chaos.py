"""Dead-node chaos against the remote executor, over real agents.

Node-level faults are seeded per ``(seed, phase, node)`` — same
SHA-stable scheme as the task-level injector — so every test here
probes ``FaultInjector.decide_node`` for a seed whose fault map is
known by construction, then replays it against a live loopback
cluster:

* a **node crash** mid-Phase II (the agent calls ``os._exit`` with
  tasks in flight) must cost one respawn charge and change no label;
* a **connection drop** must be absorbed as a node death and healed by
  the background redial — the node rejoins and serves again;
* a **worker crash inside a node** is local damage: the agent respawns
  its pool and requeues the attempt (the ``RemoteTaskLostError`` path),
  with the node itself staying alive through the whole run.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core import (
    PHASE_CELL_GRAPH,
    PHASE_DICTIONARY,
    PHASE_LABEL,
    PHASE_MERGE,
    RPDBSCAN,
)
from repro.engine import (
    FAULT_RESPAWNS,
    Engine,
    FaultInjector,
    FaultPolicy,
    loopback_nodes,
)

FIT_PARAMS = dict(eps=0.3, min_pts=10, num_partitions=6, seed=0)

#: Every phase label a 6-partition fit can hand to ``decide_node``
#: (merge rounds are generously over-provisioned).
ENGINE_PHASES = [PHASE_DICTIONARY, PHASE_CELL_GRAPH, PHASE_LABEL] + [
    f"{PHASE_MERGE} round {i}" for i in range(8)
]


def square(x):
    return x * x


# ----------------------------------------------------------------------
# Seed probes: fault maps verified by construction, not by luck.
# ----------------------------------------------------------------------


def _single_node_crash_injector() -> FaultInjector:
    """Node 0 crashes in Phase II (and nowhere earlier); node 1 never."""
    for seed in range(10_000):
        inj = FaultInjector(node_crash_prob=0.25, seed=seed)
        if not inj.decide_node(PHASE_CELL_GRAPH, 0).crash:
            continue
        if inj.decide_node(PHASE_DICTIONARY, 0).crash:
            continue  # must still be alive entering Phase II
        if any(inj.decide_node(p, 1).crash for p in ENGINE_PHASES):
            continue  # the survivor must survive
        return inj
    pytest.fail("no single-node-crash seed found")


def _single_drop_injector() -> FaultInjector:
    """Node 0 drops its connection in Phase II only; node 1 never."""
    for seed in range(10_000):
        inj = FaultInjector(node_drop_prob=0.25, seed=seed)
        drops_0 = [p for p in ENGINE_PHASES if inj.decide_node(p, 0).drop]
        drops_1 = [p for p in ENGINE_PHASES if inj.decide_node(p, 1).drop]
        if drops_0 == [PHASE_CELL_GRAPH] and not drops_1:
            return inj
    pytest.fail("no single-drop seed found")


def _worker_crash_injector() -> FaultInjector:
    """Exactly one worker-level crash: Phase II, attempt 0."""
    for seed in range(10_000):
        inj = FaultInjector(crash_prob=0.02, seed=seed)
        crashes = [
            (p, t, a)
            for p in ENGINE_PHASES
            for t in range(7)
            for a in range(3)
            if inj.decide(p, t, a).any
        ]
        if len(crashes) == 1 and crashes[0][0] == PHASE_CELL_GRAPH and crashes[0][2] == 0:
            return inj
    pytest.fail("no single-worker-crash seed found")


def _chaos_policy(injector: FaultInjector) -> FaultPolicy:
    return FaultPolicy(
        max_retries=4,
        max_respawns=8,
        backoff_base_s=0.01,
        backoff_max_s=0.1,
        injector=injector,
    )


#: Injected node deaths surface through connection loss, which is
#: immediate — a generous heartbeat timeout only stops a loaded CI box
#: from spuriously declaring a busy (but healthy) node dead.
ENGINE_OPTS = dict(heartbeat_timeout_s=30.0)


# ----------------------------------------------------------------------
# Determinism of the node fault stream
# ----------------------------------------------------------------------


class TestNodeFaultDecisions:
    def test_decisions_are_deterministic(self):
        a = FaultInjector(node_crash_prob=0.5, node_drop_prob=0.5, seed=11)
        b = FaultInjector(node_crash_prob=0.5, node_drop_prob=0.5, seed=11)
        for phase in ENGINE_PHASES:
            for node in (0, 1, 2):
                assert a.decide_node(phase, node) == b.decide_node(phase, node)

    def test_decisions_vary_by_phase_and_node(self):
        inj = FaultInjector(node_crash_prob=0.5, seed=11)
        decisions = {
            (p, n): inj.decide_node(p, n).crash
            for p in ENGINE_PHASES
            for n in range(4)
        }
        assert len(set(decisions.values())) == 2  # both outcomes drawn

    def test_node_stream_never_perturbs_the_task_stream(self):
        plain = FaultInjector(exception_prob=0.3, seed=4)
        noded = FaultInjector(
            exception_prob=0.3, node_crash_prob=0.9, node_drop_prob=0.9, seed=4
        )
        for phase in ENGINE_PHASES:
            for task in range(6):
                for attempt in range(3):
                    assert plain.decide(phase, task, attempt) == noded.decide(
                        phase, task, attempt
                    )

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"node_crash_prob": 1.5},
            {"node_drop_prob": -0.1},
            {"node_delay_prob": 2.0},
            {"node_delay_s": -1.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            FaultInjector(**kwargs)


# ----------------------------------------------------------------------
# Node death mid-phase
# ----------------------------------------------------------------------


class TestNodeCrash:
    def test_node_crash_mid_phase2_matches_serial(self, two_blobs):
        serial = RPDBSCAN(**FIT_PARAMS).fit(two_blobs)
        policy = _chaos_policy(_single_node_crash_injector())
        with loopback_nodes(num_nodes=2, workers=2) as addrs:
            with Engine("remote", nodes=addrs, fault_policy=policy, **ENGINE_OPTS) as engine:
                chaos = RPDBSCAN(**FIT_PARAMS, engine=engine).fit(two_blobs)

        # Losing a node with attempts in flight changes no label.
        np.testing.assert_array_equal(chaos.labels, serial.labels)
        assert chaos.n_clusters == serial.n_clusters
        assert chaos.fault_events.get(FAULT_RESPAWNS, 0) >= 1

        ledger = {row["node"]: row for row in chaos.node_ledger}
        assert ledger["n0"]["deaths"] >= 1
        assert ledger["n0"]["alive"] is False
        assert ledger["n1"]["alive"] is True
        assert ledger["n1"]["tasks"] >= 1


# ----------------------------------------------------------------------
# Connection drop + rejoin
# ----------------------------------------------------------------------


class TestConnectionDrop:
    def test_drop_is_absorbed_and_the_node_rejoins(self, two_blobs):
        serial = RPDBSCAN(**FIT_PARAMS).fit(two_blobs)
        policy = _chaos_policy(_single_drop_injector())
        with loopback_nodes(num_nodes=2, workers=2) as addrs:
            with Engine("remote", nodes=addrs, fault_policy=policy, **ENGINE_OPTS) as engine:
                chaos = RPDBSCAN(**FIT_PARAMS, engine=engine).fit(two_blobs)
                np.testing.assert_array_equal(chaos.labels, serial.labels)
                assert chaos.fault_events.get(FAULT_RESPAWNS, 0) >= 1

                # The agent survived its own drop; the background redial
                # brings it back (0.25 s cadence — wait it out).
                deadline = time.monotonic() + 15.0
                while time.monotonic() < deadline:
                    row = engine.node_ledger()[0]
                    if row["rejoins"] >= 1 and row["alive"]:
                        break
                    time.sleep(0.1)
                row = engine.node_ledger()[0]
                assert row["deaths"] >= 1
                assert row["rejoins"] >= 1
                assert row["alive"] is True

                # ... and serves again: a fresh map reaches both nodes.
                tasks_before = row["tasks"]
                assert engine.map_tasks(square, list(range(40))) == [
                    x * x for x in range(40)
                ]
                assert engine.node_ledger()[0]["tasks"] > tasks_before


# ----------------------------------------------------------------------
# Worker death inside a node (local damage, not node death)
# ----------------------------------------------------------------------


class TestWorkerCrashInsideNode:
    def test_worker_crash_requeues_without_killing_the_node(self, two_blobs):
        serial = RPDBSCAN(**FIT_PARAMS).fit(two_blobs)
        policy = _chaos_policy(_worker_crash_injector())
        with loopback_nodes(num_nodes=2, workers=2) as addrs:
            with Engine("remote", nodes=addrs, fault_policy=policy, **ENGINE_OPTS) as engine:
                chaos = RPDBSCAN(**FIT_PARAMS, engine=engine).fit(two_blobs)

        np.testing.assert_array_equal(chaos.labels, serial.labels)
        # The agent's pool respawn surfaced as one respawn charge ...
        assert chaos.fault_events.get(FAULT_RESPAWNS, 0) >= 1
        # ... but no node died: both stayed connected end to end.
        ledger = {row["node"]: row for row in chaos.node_ledger}
        assert ledger["n0"]["deaths"] == 0 and ledger["n1"]["deaths"] == 0
        assert ledger["n0"]["alive"] and ledger["n1"]["alive"]
