"""Integration tests: the span tracer wired through the engine and fit().

The acceptance criterion for the observability subsystem is pinned
here: a chaos run records a trace from which the full retry/respawn
history can be reconstructed, and every trace the engine emits is
well-formed (`validate_trace`) — the same check CI runs against the
chaos job's trace artifact.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import PHASES, RPDBSCAN
from repro.engine import (
    FAULT_RESPAWNS,
    FAULT_RETRIES,
    Engine,
    FaultInjector,
    FaultPolicy,
)
from repro.obs import (
    EVENT_RESPAWN,
    EVENT_RETRY,
    NULL_TRACER,
    Tracer,
    validate_trace,
)

# Picklable task functions (process mode requires module-level defs).


def square(x):
    return x * x


def _exception_only_injector(phase, n_tasks):
    for seed in range(10_000):
        inj = FaultInjector(exception_prob=0.2, seed=seed)
        hit = [inj.decide(phase, t, 0).exception for t in range(n_tasks)]
        clean = all(
            not inj.decide(phase, t, a).any
            for t in range(n_tasks)
            for a in (1, 2, 3)
        )
        if any(hit) and clean:
            return inj
    pytest.fail("no suitable exception-chaos seed found")


class TestSerialTracing:
    def test_map_tasks_records_phase_task_attempt(self):
        tracer = Tracer()
        engine = Engine("serial", tracer=tracer)
        engine.map_tasks(square, [1, 2, 3], phase="p")
        validate_trace(tracer.spans)
        phases = tracer.find(kind="phase")
        assert [s.name for s in phases] == ["p"]
        tasks = tracer.find(kind="task")
        attempts = tracer.find(kind="attempt")
        assert len(tasks) == len(attempts) == 3
        for task, attempt in zip(tasks, attempts):
            assert task.parent_id == phases[0].span_id
            assert attempt.parent_id == task.span_id
            assert attempt.annotations["winner"] is True
            assert attempt.annotations["compute_s"] >= 0

    def test_attempt_durations_match_counters(self):
        tracer = Tracer()
        engine = Engine("serial", tracer=tracer)
        engine.map_tasks(square, [1, 2, 3], phase="p")
        recorded = sorted(
            s.annotations["compute_s"] for s in tracer.find(kind="attempt")
        )
        counted = sorted(engine.counters.task_times("p"))
        assert recorded == pytest.approx(counted)

    def test_default_engine_traces_nothing(self):
        engine = Engine("serial")
        engine.map_tasks(square, [1, 2], phase="p")
        assert engine.tracer is NULL_TRACER
        assert NULL_TRACER.spans == []


class TestProcessTracing:
    def test_attempts_attributed_to_worker_pids(self):
        tracer = Tracer()
        with Engine("process", num_workers=2, tracer=tracer) as engine:
            engine.map_tasks(square, list(range(8)), phase="p")
        validate_trace(tracer.spans)
        workers = {s.worker for s in tracer.find(kind="attempt")}
        assert workers and all(isinstance(w, int) for w in workers)
        setup_names = {s.name for s in tracer.find(kind="setup")}
        assert "pool_startup" in setup_names

    def test_worker_windows_on_driver_clock(self):
        tracer = Tracer()
        with Engine("process", num_workers=2, tracer=tracer) as engine:
            with tracer.span("p", "phase", phase="p") as outer:
                pass
            engine.map_tasks(square, list(range(8)), phase="p")
        # perf_counter is system-wide on Linux: worker-measured attempt
        # windows must land after the driver span recorded just before.
        for attempt in tracer.find(kind="attempt"):
            assert attempt.start_s >= outer.start_s


class TestChaosTraceReconstruction:
    def test_retry_history_reconstructable(self):
        n = 6
        inj = _exception_only_injector("p", n)
        policy = FaultPolicy(max_retries=5, backoff_base_s=0.001, injector=inj)
        tracer = Tracer()
        engine = Engine("serial", fault_policy=policy, tracer=tracer)
        out = engine.map_tasks(square, list(range(n)), phase="p")
        assert out == [x * x for x in range(n)]
        validate_trace(tracer.spans)

        retries = engine.counters.fault_event_count(FAULT_RETRIES)
        assert retries >= 1
        # Event spans reconstruct the ledger one-to-one.
        assert len(tracer.events(EVENT_RETRY)) == retries
        # Each faulted task shows an error attempt then a clean one.
        failed = [s for s in tracer.find(kind="attempt") if s.status == "error"]
        assert len(failed) == retries
        for error_attempt in failed:
            later_ok = [
                s
                for s in tracer.find(kind="attempt")
                if s.task_id == error_attempt.task_id
                and s.attempt > error_attempt.attempt
                and s.status == "ok"
            ]
            assert later_ok, "faulted task never shows a recovering attempt"
            assert "error" in error_attempt.annotations

    def test_crash_history_reconstructable(self, two_blobs):
        # The full acceptance run: chaos fit in process mode; the trace
        # must reconstruct respawns (events + lost attempts) and stay
        # label-identical to a calm run.
        calm = RPDBSCAN(eps=0.3, min_pts=10, num_partitions=6, seed=0).fit(
            two_blobs
        )
        policy = FaultPolicy(
            max_retries=8,
            backoff_base_s=0.01,
            backoff_max_s=0.1,
            max_respawns=20,
            speculative=False,
            injector=FaultInjector(crash_prob=0.06, seed=1),
        )
        tracer = Tracer()
        with Engine(
            "process", num_workers=2, fault_policy=policy, tracer=tracer
        ) as engine:
            chaos = RPDBSCAN(
                eps=0.3, min_pts=10, num_partitions=6, seed=0, engine=engine
            ).fit(two_blobs)

        np.testing.assert_array_equal(chaos.labels, calm.labels)
        validate_trace(tracer.spans)

        respawns = chaos.fault_events.get(FAULT_RESPAWNS, 0)
        assert respawns >= 1
        respawn_events = tracer.events(EVENT_RESPAWN)
        assert len(respawn_events) == respawns
        for event in respawn_events:
            assert event.wall_start_s > 0  # ledger timestamp material
            assert event.annotations.get("reason")
        # A crash strands its in-flight attempt: recorded as lost.
        lost = [s for s in tracer.find(kind="attempt") if s.status == "lost"]
        assert lost
        # Every task of every phase still converged to a winner.
        winners = {
            (s.phase, s.task_id)
            for s in tracer.find(kind="attempt")
            if s.status == "ok"
        }
        tasks = {
            (s.phase, s.task_id) for s in tracer.find(kind="task")
        }
        assert tasks <= winners


class TestFitTraceWellFormed:
    """The CI smoke check: any traced fit yields a valid span tree."""

    def test_fit_span_tree(self, two_blobs):
        tracer = Tracer()
        engine = Engine("serial", tracer=tracer)
        RPDBSCAN(
            eps=0.3, min_pts=10, num_partitions=4, seed=0, engine=engine
        ).fit(two_blobs)
        validate_trace(tracer.spans)

        fits = tracer.find(kind="fit")
        assert len(fits) == 1
        root = fits[0]
        assert root.parent_id is None
        # Every phase/driver span hangs off the fit root and names a
        # known phase.
        for span in tracer.spans:
            if span.kind in ("phase", "driver"):
                assert span.parent_id == root.span_id
                assert span.phase in PHASES
        # The three mapped phases appear as phase spans.
        assert {s.name for s in tracer.find(kind="phase")} == {
            "I-2 dictionary",
            "II cell graph",
            "III-2 labeling",
        }

    def test_empty_fit_trace(self):
        tracer = Tracer()
        engine = Engine("serial", tracer=tracer)
        RPDBSCAN(eps=0.5, min_pts=5, engine=engine).fit(np.empty((0, 2)))
        validate_trace(tracer.spans)
        assert [s.kind for s in tracer.spans] == ["fit"]


class TestProfileCapture:
    def test_serial_profile_merged(self, tmp_path):
        engine = Engine("serial", profile=True)
        engine.map_tasks(square, [1, 2, 3], phase="p")
        stats = engine.merged_profile()
        assert stats is not None
        path = tmp_path / "prof.pstats"
        assert engine.dump_profile(path)
        assert path.exists()

    def test_process_profile_shipped_from_workers(self, tmp_path):
        with Engine("process", num_workers=2, profile=True) as engine:
            engine.map_tasks(square, list(range(6)), phase="p")
        assert len(engine.profile_blobs) == 6
        assert engine.merged_profile() is not None

    def test_profile_off_by_default(self):
        engine = Engine("serial")
        engine.map_tasks(square, [1, 2], phase="p")
        assert engine.merged_profile() is None
        assert not engine.dump_profile("/nonexistent/never-written")
