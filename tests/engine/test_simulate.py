"""Unit tests for repro.engine.simulate."""

import pytest

from repro.engine.simulate import makespan, speedup_curve


class TestMakespan:
    def test_one_worker_is_sum(self):
        assert makespan([1.0, 2.0, 3.0], 1) == pytest.approx(6.0)

    def test_enough_workers_is_max(self):
        assert makespan([1.0, 2.0, 3.0], 3) == pytest.approx(3.0)
        assert makespan([1.0, 2.0, 3.0], 100) == pytest.approx(3.0)

    def test_greedy_arrival_order(self):
        # Two workers, arrival order: [3, 3, 1, 1] -> 3+1 each = 4.
        assert makespan([3.0, 3.0, 1.0, 1.0], 2) == pytest.approx(4.0)

    def test_lpt_sorts_descending(self):
        # LPT on [1, 1, 3, 3] with 2 workers pairs 3+1 on each: 4.
        assert makespan([1.0, 1.0, 3.0, 3.0], 2, policy="lpt") == pytest.approx(4.0)

    def test_empty(self):
        assert makespan([], 4) == 0.0

    def test_monotone_in_workers(self):
        durations = [0.5, 1.5, 2.5, 1.0, 3.0, 0.2]
        times = [makespan(durations, w) for w in (1, 2, 3, 4, 8)]
        assert times == sorted(times, reverse=True)

    def test_never_below_slowest_task(self):
        durations = [0.1] * 50 + [5.0]
        assert makespan(durations, 100) >= 5.0

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            makespan([1.0], 0)
        with pytest.raises(ValueError):
            makespan([-1.0], 2)
        with pytest.raises(ValueError):
            makespan([1.0], 2, policy="random")


class TestSpeedupCurve:
    def test_baseline_is_one(self):
        curve = speedup_curve([1.0] * 40, [5, 10, 20, 40])
        assert curve[5] == pytest.approx(1.0)

    def test_balanced_tasks_scale_linearly(self):
        curve = speedup_curve([1.0] * 40, [5, 10, 20, 40])
        assert curve[40] == pytest.approx(8.0)

    def test_imbalanced_tasks_plateau(self):
        # One giant task bounds the makespan: speed-up flattens.
        durations = [10.0] + [0.1] * 39
        curve = speedup_curve(durations, [5, 10, 20, 40])
        assert curve[40] < 2.0

    def test_serial_overhead_caps_speedup(self):
        # Amdahl: with overhead equal to the parallel time at 5 workers,
        # speed-up can never reach 2x no matter the worker count.
        durations = [1.0] * 40
        curve = speedup_curve(durations, [5, 40], serial_overhead_s=8.0)
        assert curve[40] < 2.0

    def test_empty_worker_list(self):
        assert speedup_curve([1.0], []) == {}


class TestPhaseSchedule:
    def _schedule(self):
        from repro.engine.simulate import PhaseSchedule

        return (
            PhaseSchedule()
            .add_divisible(10.0)
            .add_parallel([1.0] * 8)
            .add_constant(2.0)
        )

    def test_elapsed_one_worker(self):
        # 10/1 + 8*1 + 2 = 20
        assert self._schedule().elapsed(1) == pytest.approx(20.0)

    def test_elapsed_many_workers(self):
        # 10/8 + 1 + 2 = 4.25
        assert self._schedule().elapsed(8) == pytest.approx(4.25)

    def test_constant_floor(self):
        from repro.engine.simulate import PhaseSchedule

        schedule = PhaseSchedule().add_constant(5.0)
        assert schedule.elapsed(1) == schedule.elapsed(1000) == 5.0

    def test_speedups_baseline_one(self):
        curve = self._schedule().speedups([1, 2, 8])
        assert curve[1] == pytest.approx(1.0)
        assert curve[2] > 1.0
        assert curve[8] > curve[2]

    def test_speedup_bounded_by_constant_fraction(self):
        # Amdahl bound: constant is 10% of the 1-worker time -> <= 10x.
        curve = self._schedule().speedups([1, 10_000])
        assert curve[10_000] < 10.0

    def test_empty_schedule(self):
        from repro.engine.simulate import PhaseSchedule

        assert PhaseSchedule().elapsed(4) == 0.0

    def test_rejects_bad_workers(self):
        with pytest.raises(ValueError):
            self._schedule().elapsed(0)


class TestFromTrace:
    @staticmethod
    def _span(span_id, kind, name, start, end, *, parent_id=None, **extra):
        from repro.obs.spans import Span

        annotations = extra.pop("annotations", {})
        return Span(
            span_id=span_id,
            name=name,
            kind=kind,
            start_s=start,
            wall_start_s=start,
            end_s=end,
            parent_id=parent_id,
            annotations=annotations,
            **extra,
        )

    def _trace(self):
        """fit → driver (2s) + mapped phase (tasks of 1s and 3s, plus a
        lost 5s attempt that must not be replayed) + setup (4s)."""
        s = self._span
        return [
            s(0, "fit", "fit", 0.0, 10.0),
            s(1, "setup", "pool_startup", 0.0, 4.0, parent_id=0),
            s(2, "driver", "III-1 merging", 0.0, 2.0, parent_id=0,
              phase="III-1 merging"),
            s(3, "phase", "II", 2.0, 8.0, parent_id=0, phase="II"),
            s(4, "attempt", "task 0#0", 2.0, 7.0, parent_id=3, phase="II",
              task_id=0, attempt=0, status="lost"),
            s(5, "attempt", "task 0#1", 2.0, 3.0, parent_id=3, phase="II",
              task_id=0, attempt=1,
              annotations={"compute_s": 1.0, "winner": True}),
            s(6, "attempt", "task 1#0", 2.0, 5.0, parent_id=3, phase="II",
              task_id=1, attempt=0,
              annotations={"compute_s": 3.0, "winner": True}),
        ]

    def test_phases_reconstructed(self):
        from repro.engine.simulate import PhaseSchedule

        schedule = PhaseSchedule.from_trace(self._trace())
        # driver constant 2s; parallel [1, 3]; setup excluded.
        assert schedule.elapsed(1) == pytest.approx(2.0 + 4.0)
        assert schedule.elapsed(2) == pytest.approx(2.0 + 3.0)

    def test_include_setup(self):
        from repro.engine.simulate import PhaseSchedule

        schedule = PhaseSchedule.from_trace(self._trace(), include_setup=True)
        assert schedule.elapsed(2) == pytest.approx(4.0 + 2.0 + 3.0)

    def test_phase_without_tasks_becomes_constant(self):
        from repro.engine.simulate import PhaseSchedule

        spans = [self._span(0, "phase", "empty", 0.0, 1.5, phase="empty")]
        schedule = PhaseSchedule.from_trace(spans)
        assert schedule.elapsed(1) == schedule.elapsed(8) == pytest.approx(1.5)

    def test_speedup_curve_accepts_schedule(self):
        from repro.engine.simulate import PhaseSchedule

        schedule = PhaseSchedule.from_trace(self._trace())
        curve = speedup_curve(schedule, [1, 2])
        assert curve[1] == pytest.approx(1.0)
        assert curve[2] == pytest.approx(6.0 / 5.0)
        assert curve == schedule.speedups([1, 2])

    def test_speedup_curve_rejects_overhead_with_schedule(self):
        from repro.engine.simulate import PhaseSchedule

        with pytest.raises(ValueError, match="serial_overhead_s"):
            speedup_curve(PhaseSchedule(), [1, 2], serial_overhead_s=1.0)

    def test_round_trip_from_live_engine(self):
        from repro.engine import Engine
        from repro.engine.simulate import PhaseSchedule
        from repro.obs import Tracer

        tracer = Tracer()
        engine = Engine("serial", tracer=tracer)
        engine.map_tasks(lambda x: x * x, [1, 2, 3, 4], phase="p")
        schedule = PhaseSchedule.from_trace(tracer.spans)
        # Four measured tasks: more workers never slow the replay down.
        assert schedule.elapsed(4) <= schedule.elapsed(1)
