"""The remote executor over real loopback node agents.

Spawns genuine ``python -m repro.node`` subprocesses on 127.0.0.1 and
drives them through ``Engine(executor="remote", nodes=...)``:

* **bit-identity** — a remote fit over 2 nodes produces labels
  identical to the serial engine's, across ``dictionary_layout`` ×
  node broadcast channel × Phase II kernel, through both the fast path
  (no fault policy) and the recovery loop;
* **one ship per node per epoch** — the engine's broadcast counters
  and each node's ledger row prove a broadcast value crossed the wire
  exactly once per node, however many ``map_tasks`` calls reuse it;
* **observability** — node ledger in the result, ``n<k>:<pid>`` worker
  labels, node-annotated attempt spans, and the node column/ledger in
  the rendered run report;
* **teardown ordering** — a mid-phase ``close()`` from another thread
  neither hangs nor leaks ``/dev/shm`` segments (process and remote).
"""

from __future__ import annotations

import glob
import threading
import time

import numpy as np
import pytest

from repro.core import RPDBSCAN
from repro.engine import Engine, EngineClosedError, FaultPolicy, loopback_nodes
from repro.engine.shm import SHM_NAME_PREFIX
from repro.kernels import HAVE_NUMBA
from repro.obs.report import render_run_report
from repro.obs.spans import Tracer

KERNELS = ["numpy"] + (["numba"] if HAVE_NUMBA else [])

FIT_PARAMS = dict(eps=0.3, min_pts=10, num_partitions=6, seed=0)


def live_segments() -> list[str]:
    return sorted(glob.glob(f"/dev/shm/{SHM_NAME_PREFIX}*"))


def square(x):
    return x * x


def add_broadcast(x, b):
    return x + b


def sleep_then_square(task):
    sleep_s, value = task
    if sleep_s:
        time.sleep(sleep_s)
    return value * value


@pytest.fixture(scope="module", params=["pickle", "shm"])
def nodes(request):
    """Two loopback agents, 2 workers each, per broadcast channel."""
    with loopback_nodes(
        num_nodes=2, workers=2, broadcast_channel=request.param
    ) as addrs:
        yield addrs


# ----------------------------------------------------------------------
# map_tasks semantics over the wire
# ----------------------------------------------------------------------


class TestRemoteMapTasks:
    def test_plain_map(self, nodes):
        with Engine("remote", nodes=nodes) as engine:
            assert engine.map_tasks(square, list(range(20))) == [
                x * x for x in range(20)
            ]
            assert engine.num_workers == 4  # 2 nodes x 2 workers

    def test_map_with_broadcast(self, nodes):
        with Engine("remote", nodes=nodes) as engine:
            assert engine.map_tasks(
                add_broadcast, list(range(10)), broadcast=100
            ) == [100 + x for x in range(10)]

    def test_map_through_recovery_loop(self, nodes):
        policy = FaultPolicy(max_retries=2, backoff_base_s=0.01)
        with Engine("remote", nodes=nodes, fault_policy=policy) as engine:
            assert engine.map_tasks(
                add_broadcast, list(range(12)), broadcast=7
            ) == [7 + x for x in range(12)]

    def test_one_ship_per_node_per_epoch(self, nodes):
        with Engine("remote", nodes=nodes) as engine:
            value = list(range(100))
            for _ in range(3):  # same value: one fan-out total
                engine.map_tasks(
                    lambda_free_sum, list(range(8)), broadcast=value
                )
            assert engine.broadcast_ships == 1
            ledger = engine.node_ledger()
            assert [row["ships"] for row in ledger] == [1, 1]

            engine.map_tasks(
                lambda_free_sum, list(range(8)), broadcast=list(range(50))
            )
            assert engine.broadcast_ships == 2
            ledger = engine.node_ledger()
            assert [row["ships"] for row in ledger] == [2, 2]
            assert all(row["bytes_shipped"] > 0 for row in ledger)

    def test_node_ledger_shape(self, nodes):
        with Engine("remote", nodes=nodes) as engine:
            engine.map_tasks(square, list(range(8)))
            ledger = engine.node_ledger()
            assert len(ledger) == 2
            for row, addr in zip(ledger, nodes):
                assert row["addr"] == addr
                assert row["workers"] == 2
                assert row["alive"] is True
                assert row["deaths"] == 0
            # Every task landed on some node.
            assert sum(row["tasks"] for row in ledger) == 8

    def test_worker_labels_carry_the_node(self, nodes):
        tracer = Tracer()
        with Engine("remote", nodes=nodes, tracer=tracer) as engine:
            with tracer.span("map", "phase", phase="map"):
                engine.map_tasks(square, list(range(12)))
        workers = {
            s.worker for s in tracer.spans if s.kind == "attempt"
        }
        assert workers
        for worker in workers:
            node, _, pid = str(worker).partition(":")
            assert node in ("n0", "n1")
            assert pid.isdigit()

    def test_num_workers_is_rejected_in_remote_mode(self, nodes):
        with pytest.raises(ValueError, match="per-node"):
            Engine("remote", num_workers=4, nodes=nodes)

    def test_remote_mode_needs_nodes(self):
        with pytest.raises(ValueError, match="nodes"):
            Engine("remote")

    def test_node_ledger_is_none_off_remote(self):
        with Engine("serial") as engine:
            assert engine.node_ledger() is None


def lambda_free_sum(x, b):
    return x + len(b)


# ----------------------------------------------------------------------
# Full fits: bit-identity with the serial engine
# ----------------------------------------------------------------------


class TestRemoteFitIdentity:
    @pytest.mark.parametrize("layout", ["flat", "dict"])
    @pytest.mark.parametrize("kernel", KERNELS)
    def test_fit_matches_serial(self, nodes, two_blobs, layout, kernel):
        if kernel == "numba" and layout == "dict":
            pytest.skip("numba kernel requires the flat layout")
        serial = RPDBSCAN(
            **FIT_PARAMS, dictionary_layout=layout, kernel=kernel
        ).fit(two_blobs)
        with Engine("remote", nodes=nodes) as engine:
            remote = RPDBSCAN(
                **FIT_PARAMS,
                dictionary_layout=layout,
                kernel=kernel,
                engine=engine,
            ).fit(two_blobs)
        np.testing.assert_array_equal(remote.labels, serial.labels)
        assert remote.n_clusters == serial.n_clusters
        assert remote.node_ledger is not None
        assert len(remote.node_ledger) == 2

    def test_fit_through_recovery_loop_matches_serial(self, nodes, two_blobs):
        serial = RPDBSCAN(**FIT_PARAMS).fit(two_blobs)
        policy = FaultPolicy(max_retries=2, backoff_base_s=0.01)
        with Engine("remote", nodes=nodes, fault_policy=policy) as engine:
            remote = RPDBSCAN(**FIT_PARAMS, engine=engine).fit(two_blobs)
        np.testing.assert_array_equal(remote.labels, serial.labels)
        assert remote.fault_events == {}

    def test_fit_report_shows_nodes(self, nodes, two_blobs):
        tracer = Tracer()
        with Engine("remote", nodes=nodes, tracer=tracer) as engine:
            RPDBSCAN(**FIT_PARAMS, engine=engine).fit(two_blobs)
        report = render_run_report(tracer.spans)
        assert "per-worker utilization" in report
        assert "node broadcast ledger" in report
        assert "n0" in report and "n1" in report

    def test_serial_result_has_no_node_ledger(self, two_blobs):
        assert RPDBSCAN(**FIT_PARAMS).fit(two_blobs).node_ledger is None


# ----------------------------------------------------------------------
# close() teardown ordering (the mid-phase close regression)
# ----------------------------------------------------------------------


class TestCloseMidPhase:
    def _close_mid_map(self, engine):
        """Run a slow map in a thread, close the engine under it."""
        tasks = [(0.3, v) for v in range(16)]
        errors: list[BaseException] = []

        def run():
            try:
                engine.map_tasks(
                    sleep_then_square, tasks, broadcast=np.arange(4096)
                )
            except BaseException as exc:  # noqa: BLE001 - recorded, asserted on
                errors.append(exc)

        thread = threading.Thread(target=run)
        thread.start()
        time.sleep(0.6)  # well inside the phase
        engine.close()
        thread.join(timeout=30.0)
        assert not thread.is_alive(), "map_tasks hung across close()"
        assert errors, "mid-phase close must surface an error to the mapper"

    @pytest.mark.parametrize("fault_policy", [None, FaultPolicy(max_retries=1)])
    def test_process_close_mid_phase_leaks_nothing(self, fault_policy):
        # Live node agents (module fixture) legitimately hold their own
        # installed segments — only *new* segments count as a leak.
        baseline = live_segments()
        engine = Engine(
            "process",
            num_workers=2,
            broadcast_channel="shm",
            fault_policy=fault_policy,
        )
        self._close_mid_map(engine)
        assert live_segments() == baseline
        with pytest.raises(EngineClosedError):
            engine.map_tasks(square, [1, 2, 3])  # closed engines refuse work

    def test_remote_close_mid_phase_does_not_hang(self):
        # Own harness: closing the engine shuts its agents down, so the
        # shared module fixture must not be sacrificed here.
        with loopback_nodes(num_nodes=2, workers=2) as addrs:
            engine = Engine("remote", nodes=addrs)
            self._close_mid_map(engine)
            assert engine.node_ledger() is None  # cluster released

    def test_close_is_idempotent(self):
        engine = Engine("process", num_workers=2)
        engine.map_tasks(square, [1, 2, 3])
        engine.close()
        engine.close()
