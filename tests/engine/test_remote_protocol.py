"""The distributed substrate's wire layer, sockets excluded.

Everything here runs against in-memory byte streams: frame round trips
(property-based, plus a >16 MiB payload), rejection of truncated and
garbage frames, version-mismatch refusal at ``hello`` time, and
heartbeat-timeout detection with a fake clock.  The live TCP paths are
covered by the loopback tests in ``test_remote_executor``.
"""

from __future__ import annotations

import asyncio
import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.remote.protocol import (
    FRAME_MAGIC,
    HEADER_SIZE,
    MAX_FRAME_BYTES,
    MESSAGE_TYPES,
    MSG_HELLO,
    MSG_HEARTBEAT,
    MSG_TASK,
    PROTOCOL_VERSION,
    FrameError,
    HeartbeatMonitor,
    VersionMismatchError,
    decode_header,
    encode_frame,
    read_frame,
    write_frame,
)

_HEADER = struct.Struct(">4sHHQ")


def _read_one(data: bytes) -> tuple[int, bytes]:
    """Decode one frame from an in-memory stream via ``read_frame``."""

    async def go() -> tuple[int, bytes]:
        reader = asyncio.StreamReader()
        reader.feed_data(data)
        reader.feed_eof()
        return await read_frame(reader)

    return asyncio.run(go())


# ----------------------------------------------------------------------
# Frame round trips
# ----------------------------------------------------------------------


class TestFrameRoundTrip:
    @settings(max_examples=80, deadline=None)
    @given(
        msg_type=st.sampled_from(sorted(MESSAGE_TYPES)),
        payload=st.binary(min_size=0, max_size=4096),
    )
    def test_encode_decode_round_trip(self, msg_type, payload):
        frame = encode_frame(msg_type, payload)
        assert len(frame) == HEADER_SIZE + len(payload)
        got_type, got_len = decode_header(frame[:HEADER_SIZE])
        assert (got_type, got_len) == (msg_type, len(payload))
        assert frame[HEADER_SIZE:] == payload

    @settings(max_examples=40, deadline=None)
    @given(
        msg_type=st.sampled_from(sorted(MESSAGE_TYPES)),
        payload=st.binary(min_size=0, max_size=2048),
    )
    def test_stream_round_trip(self, msg_type, payload):
        got_type, got_payload = _read_one(encode_frame(msg_type, payload))
        assert (got_type, got_payload) == (msg_type, payload)

    def test_empty_payload_is_the_default(self):
        assert encode_frame(MSG_HEARTBEAT) == encode_frame(MSG_HEARTBEAT, b"")
        got_type, got_payload = _read_one(encode_frame(MSG_HEARTBEAT))
        assert (got_type, got_payload) == (MSG_HEARTBEAT, b"")

    def test_payload_larger_than_16_mib(self):
        # Broadcast blobs routinely exceed tens of MiB; the u64 length
        # field must carry them without truncation.
        payload = b"\xab" * ((16 << 20) + 17)
        got_type, got_payload = _read_one(encode_frame(MSG_TASK, payload))
        assert got_type == MSG_TASK
        assert got_payload == payload

    def test_back_to_back_frames_keep_their_boundaries(self):
        async def go():
            reader = asyncio.StreamReader()
            reader.feed_data(encode_frame(MSG_TASK, b"first"))
            reader.feed_data(encode_frame(MSG_HEARTBEAT))
            reader.feed_data(encode_frame(MSG_TASK, b"third"))
            reader.feed_eof()
            return [await read_frame(reader) for _ in range(3)]

        assert asyncio.run(go()) == [
            (MSG_TASK, b"first"),
            (MSG_HEARTBEAT, b""),
            (MSG_TASK, b"third"),
        ]

    def test_write_frame_matches_encode_frame(self):
        async def go():
            reader = asyncio.StreamReader()

            class _Writer:
                def write(self, data):
                    reader.feed_data(data)

                async def drain(self):
                    pass

            await write_frame(_Writer(), MSG_TASK, b"payload")
            reader.feed_eof()
            return await read_frame(reader)

        assert asyncio.run(go()) == (MSG_TASK, b"payload")


# ----------------------------------------------------------------------
# Malformed frames
# ----------------------------------------------------------------------


class TestFrameRejection:
    def test_truncated_header(self):
        frame = encode_frame(MSG_TASK, b"x")
        for cut in (0, 1, HEADER_SIZE - 1):
            with pytest.raises(FrameError, match="truncated"):
                decode_header(frame[:cut])

    def test_bad_magic(self):
        header = _HEADER.pack(b"HTTP", PROTOCOL_VERSION, MSG_TASK, 0)
        with pytest.raises(FrameError, match="magic"):
            decode_header(header)
        # And a non-protocol peer's plaintext greeting is garbage too.
        with pytest.raises(FrameError):
            _read_one(b"GET / HTTP/1.1\r\n" + b" " * HEADER_SIZE)

    def test_unknown_message_type(self):
        header = _HEADER.pack(FRAME_MAGIC, PROTOCOL_VERSION, 999, 0)
        with pytest.raises(FrameError, match="message type"):
            decode_header(header)
        with pytest.raises(FrameError):
            encode_frame(999, b"")

    def test_implausible_length_is_rejected_before_reading(self):
        # A corrupted length field must fail fast, not attempt a
        # multi-exabyte readexactly.
        header = _HEADER.pack(
            FRAME_MAGIC, PROTOCOL_VERSION, MSG_TASK, MAX_FRAME_BYTES + 1
        )
        with pytest.raises(FrameError, match="exceeds"):
            decode_header(header)

    def test_oversized_payload_refused_at_encode_time(self):
        class _HugeBytes(bytes):
            def __len__(self):
                return MAX_FRAME_BYTES + 1

        with pytest.raises(FrameError, match="exceeds"):
            encode_frame(MSG_TASK, _HugeBytes())

    @settings(max_examples=60, deadline=None)
    @given(junk=st.binary(min_size=HEADER_SIZE, max_size=HEADER_SIZE))
    def test_random_junk_headers_never_misparse_silently(self, junk):
        # Random 16-byte headers either decode to a legal (type, length)
        # or raise FrameError — never anything else.
        try:
            msg_type, length = decode_header(junk)
        except FrameError:
            return
        assert msg_type in MESSAGE_TYPES
        assert 0 <= length <= MAX_FRAME_BYTES

    def test_eof_mid_frame_is_an_incomplete_read(self):
        frame = encode_frame(MSG_TASK, b"payload")
        with pytest.raises(asyncio.IncompleteReadError):
            _read_one(frame[:-3])


# ----------------------------------------------------------------------
# Version skew
# ----------------------------------------------------------------------


class TestVersionMismatch:
    def test_foreign_version_refused(self):
        header = _HEADER.pack(FRAME_MAGIC, PROTOCOL_VERSION + 1, MSG_HELLO, 0)
        with pytest.raises(VersionMismatchError):
            decode_header(header)

    def test_hello_from_a_future_driver_is_refused_before_payload(self):
        # An old endpoint must refuse a new driver's hello at the header
        # — the (possibly incompatible) payload is never touched.
        payload = b"\x01" * 64
        header = _HEADER.pack(
            FRAME_MAGIC, PROTOCOL_VERSION + 3, MSG_HELLO, len(payload)
        )
        with pytest.raises(VersionMismatchError, match="version"):
            _read_one(header + payload)

    def test_version_checked_after_magic_before_type(self):
        # Wrong magic wins over wrong version: garbage is garbage.
        header = _HEADER.pack(b"NOPE", PROTOCOL_VERSION + 1, MSG_HELLO, 0)
        with pytest.raises(FrameError) as excinfo:
            decode_header(header)
        assert not isinstance(excinfo.value, VersionMismatchError)
        # Wrong version wins over unknown type: a future version may
        # legitimately speak types this endpoint has never heard of.
        header = _HEADER.pack(FRAME_MAGIC, PROTOCOL_VERSION + 1, 999, 0)
        with pytest.raises(VersionMismatchError):
            decode_header(header)


# ----------------------------------------------------------------------
# Heartbeat timeout (fake clock, no sockets)
# ----------------------------------------------------------------------


class _FakeClock:
    def __init__(self, now: float = 100.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now


class TestHeartbeatMonitor:
    def test_timeout_with_fake_clock(self):
        clock = _FakeClock()
        monitor = HeartbeatMonitor(10.0, clock=clock)
        monitor.beat(0)
        monitor.beat(1)
        assert monitor.expired() == []
        clock.now += 9.0
        monitor.beat(1)  # node 1 keeps talking
        assert monitor.expired() == []
        clock.now += 2.0  # node 0 silent for 11 s, node 1 for 2 s
        assert monitor.expired() == [0]
        assert monitor.last_seen(1) == pytest.approx(109.0)

    def test_never_beaten_nodes_never_expire(self):
        clock = _FakeClock()
        monitor = HeartbeatMonitor(1.0, clock=clock)
        clock.now += 1000.0
        assert monitor.expired() == []
        assert monitor.last_seen(7) is None

    def test_forget_stops_tracking(self):
        clock = _FakeClock()
        monitor = HeartbeatMonitor(1.0, clock=clock)
        monitor.beat(0)
        clock.now += 5.0
        assert monitor.expired() == [0]
        monitor.forget(0)
        assert monitor.expired() == []  # known dead: no double report
        monitor.forget(0)  # idempotent

    def test_beat_after_expiry_revives(self):
        clock = _FakeClock()
        monitor = HeartbeatMonitor(1.0, clock=clock)
        monitor.beat(0)
        clock.now += 5.0
        assert monitor.expired() == [0]
        monitor.beat(0)
        assert monitor.expired() == []

    def test_nonpositive_timeout_rejected(self):
        with pytest.raises(ValueError):
            HeartbeatMonitor(0.0)
        with pytest.raises(ValueError):
            HeartbeatMonitor(-1.0)
