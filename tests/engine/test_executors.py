"""Unit tests for repro.engine.executors."""

import operator
import os

import numpy as np
import pytest

from repro.engine import executors
from repro.engine.executors import Engine


def square(x):
    return x * x


def add_broadcast(x, b):
    return x + b


def touch_items(task):
    return len(task)


def worker_pid(x):
    return os.getpid()


def read_worker_state(x, b):
    """Expose the worker's broadcast-cache state for the epoch tests."""
    return (
        os.getpid(),
        executors._WORKER_INSTALLS,
        executors._WORKER_EPOCH,
        b,
    )


def read_broadcast_flag(x, b):
    return b["warmed"]


def ignore_broadcast(x, b):
    return x


def set_warmed(b):
    b["warmed"] = True


class TestSerialEngine:
    def test_results_in_task_order(self):
        engine = Engine("serial")
        assert engine.map_tasks(square, [1, 2, 3]) == [1, 4, 9]

    def test_broadcast_passed(self):
        engine = Engine("serial")
        assert engine.map_tasks(add_broadcast, [1, 2], broadcast=10) == [11, 12]

    def test_task_stats_recorded(self):
        engine = Engine("serial")
        engine.map_tasks(square, [1, 2, 3], phase="p")
        stats = engine.counters.phase_tasks["p"]
        assert [s.task_id for s in stats] == [0, 1, 2]
        assert all(s.wall_time_s >= 0 for s in stats)

    def test_item_counter(self):
        engine = Engine("serial")
        engine.map_tasks(touch_items, [[1, 2], [3]], phase="p", item_counter=len)
        assert engine.counters.items_processed("p") == 3

    def test_phase_time_recorded(self):
        engine = Engine("serial")
        engine.map_tasks(square, [1], phase="ph")
        assert "ph" in engine.counters.phase_seconds

    def test_empty_task_list(self):
        engine = Engine("serial")
        assert engine.map_tasks(square, []) == []


class TestProcessEngine:
    def test_results_match_serial(self):
        tasks = list(range(8))
        serial = Engine("serial").map_tasks(square, tasks)
        parallel = Engine("process", num_workers=2).map_tasks(square, tasks)
        assert serial == parallel

    def test_broadcast_shipped_once_per_worker(self):
        engine = Engine("process", num_workers=2)
        big = np.arange(1000)
        out = engine.map_tasks(add_broadcast, [1, 2, 3, 4], broadcast=big)
        for i, result in enumerate(out):
            np.testing.assert_array_equal(result, big + i + 1)

    def test_single_task_runs_inline(self):
        # One task short-circuits to the serial path (no pool overhead).
        engine = Engine("process", num_workers=4)
        assert engine.map_tasks(square, [3]) == [9]
        assert engine.pools_created == 0


class TestPersistentPool:
    def test_one_pool_per_engine_lifetime(self):
        with Engine("process", num_workers=2) as engine:
            pids = set()
            for phase in ("a", "b", "c"):
                pids |= set(engine.map_tasks(worker_pid, list(range(6)), phase=phase))
            assert engine.pools_created == 1
            # Every phase is served by the same pool of <= 2 workers: no
            # new processes appear between phases.
            assert len(pids) <= 2
            assert os.getpid() not in pids

    def test_close_is_final_and_fails_tasks_cleanly(self):
        from repro.engine import EngineClosedError

        engine = Engine("process", num_workers=2)
        engine.map_tasks(square, [1, 2, 3])
        engine.close()
        assert engine.closed
        with pytest.raises(EngineClosedError):
            engine.map_tasks(square, [1, 2, 3])
        # The refusal must not have resurrected the pool.
        assert engine.pools_created == 1
        assert engine._pool is None

    def test_double_close_is_idempotent(self):
        engine = Engine("process", num_workers=2)
        engine.map_tasks(square, [1, 2, 3])
        engine.close()
        engine.close()  # second close (or __exit__ after close) is a no-op
        assert engine.closed

    def test_del_after_close_is_safe(self):
        engine = Engine("process", num_workers=2)
        engine.map_tasks(square, [1, 2])
        engine.close()
        engine.__del__()  # simulate GC after explicit close

    def test_close_without_pool_is_noop(self):
        Engine("process").close()
        Engine("serial").close()

    def test_close_after_failed_map_does_not_hang(self):
        # A crashed phase used to leave the pool in a state where
        # close() could block on stuck workers; terminate-based close
        # must return promptly and keep the engine consistent.
        engine = Engine("process", num_workers=2)
        with pytest.raises(RuntimeError):
            engine.map_tasks(boom, [1, 2, 3])
        engine.close()
        assert engine._pool is None

    def test_context_manager_closes(self):
        with Engine("process", num_workers=2) as engine:
            engine.map_tasks(square, [1, 2, 3])
        assert engine._pool is None

    def test_worker_attribution_recorded(self):
        with Engine("process", num_workers=2) as engine:
            engine.map_tasks(square, list(range(6)), phase="p")
            stats = engine.counters.phase_tasks["p"]
            workers = {s.worker for s in stats}
            assert all(isinstance(w, int) for w in workers)
            assert engine.counters.worker_imbalance("p") >= 1.0

    def test_pool_startup_in_setup_bucket_not_phase(self):
        with Engine("process", num_workers=2) as engine:
            engine.map_tasks(square, list(range(4)), phase="only-phase")
            assert "pool_startup" in engine.counters.setup_seconds
            assert set(engine.counters.phase_seconds) == {"only-phase"}
            assert "pool_startup" not in engine.counters.breakdown()


class TestBroadcastEpochs:
    def test_distinct_broadcast_shipped_once_per_worker(self):
        with Engine("process", num_workers=2) as engine:
            b1 = {"value": 1}
            out1 = engine.map_tasks(read_worker_state, [0, 1, 2, 3], broadcast=b1)
            out2 = engine.map_tasks(read_worker_state, [0, 1, 2, 3], broadcast=b1)
            assert engine.broadcast_ships == 1
            # Every worker installed the broadcast exactly once and every
            # task of both calls saw epoch 1.
            for pid, installs, epoch, seen in out1 + out2:
                assert installs == 1
                assert epoch == 1
                assert seen == {"value": 1}

    def test_new_broadcast_bumps_epoch_and_invalidates_cache(self):
        with Engine("process", num_workers=2) as engine:
            out1 = engine.map_tasks(read_worker_state, [0, 1, 2], broadcast={"v": 1})
            out2 = engine.map_tasks(read_worker_state, [0, 1, 2], broadcast={"v": 2})
            assert engine.broadcast_ships == 2
            assert engine.broadcast_epoch == 2
            assert all(epoch == 1 and seen == {"v": 1} for _, _, epoch, seen in out1)
            assert all(epoch == 2 and seen == {"v": 2} for _, _, epoch, seen in out2)
            # Each worker re-installed once per distinct broadcast.
            assert all(installs <= 2 for _, installs, _, _ in out2)

    def test_broadcast_ship_recorded_as_setup(self):
        with Engine("process", num_workers=2) as engine:
            engine.map_tasks(add_broadcast, [1, 2, 3], broadcast=10, phase="p")
            assert "broadcast_ship" in engine.counters.setup_seconds
            assert engine.counters.setup_total() > 0.0

    def test_fresh_engine_has_cold_caches(self):
        # Pool caches die with the engine: the same broadcast object
        # ships again on a new engine (per-engine epochs, no leakage).
        b = {"v": 7}
        with Engine("process", num_workers=2) as first:
            first.map_tasks(read_worker_state, [0, 1, 2], broadcast=b)
            assert first.broadcast_ships == 1
        with Engine("process", num_workers=2) as second:
            out = second.map_tasks(read_worker_state, [0, 1, 2], broadcast=b)
            assert second.broadcast_ships == 1
            assert all(seen == {"v": 7} for _, _, _, seen in out)


class TestWarmup:
    def test_process_warmup_runs_in_each_worker_before_tasks(self):
        with Engine("process", num_workers=2) as engine:
            flag = {"warmed": False}
            out = engine.map_tasks(
                read_broadcast_flag, [0, 1, 2, 3], broadcast=flag, warmup=set_warmed
            )
            # Workers mutate their own unpickled copy during install, so
            # every task observes the warmed state; the driver's original
            # is untouched.
            assert out == [True, True, True, True]
            assert flag["warmed"] is False
            assert "warmup" in engine.counters.setup_seconds

    def test_serial_warmup_runs_once_per_broadcast(self):
        engine = Engine("serial")
        calls = []
        b1, b2 = {"v": 1}, {"v": 2}
        engine.map_tasks(ignore_broadcast, [1], broadcast=b1, warmup=calls.append)
        engine.map_tasks(ignore_broadcast, [2], broadcast=b1, warmup=calls.append)
        engine.map_tasks(ignore_broadcast, [3], broadcast=b2, warmup=calls.append)
        assert calls == [b1, b2]
        assert "warmup" in engine.counters.setup_seconds

    def test_warmup_excluded_from_phase_time(self):
        import time as _time

        engine = Engine("serial")
        engine.map_tasks(
            add_broadcast,
            [1, 2],
            broadcast=0,
            phase="p",
            warmup=lambda b: _time.sleep(0.05),
        )
        assert engine.counters.setup_seconds["warmup"] >= 0.05
        assert engine.counters.phase_seconds["p"] < 0.05


class TestSpawnSafety:
    def test_spawn_start_method(self):
        with Engine("process", num_workers=2, start_method="spawn") as engine:
            out = engine.map_tasks(operator.add, [1, 2, 3, 4], broadcast=10)
            assert out == [11, 12, 13, 14]
            out = engine.map_tasks(operator.mul, [1, 2, 3, 4], broadcast=10)
            assert out == [10, 20, 30, 40]
            assert engine.broadcast_ships == 1


class TestValidation:
    def test_unknown_mode(self):
        with pytest.raises(ValueError):
            Engine("threads")

    def test_bad_worker_count(self):
        with pytest.raises(ValueError):
            Engine("serial", num_workers=0)


def boom(x):
    raise RuntimeError(f"task {x} failed")


class TestErrorPropagation:
    def test_serial_task_error_propagates(self):
        engine = Engine("serial")
        with pytest.raises(RuntimeError, match="task 1 failed"):
            engine.map_tasks(boom, [1])

    def test_phase_time_still_recorded_on_error(self):
        engine = Engine("serial")
        with pytest.raises(RuntimeError):
            engine.map_tasks(boom, [1], phase="doomed")
        assert "doomed" in engine.counters.phase_seconds

    def test_process_task_error_propagates_and_pool_survives(self):
        with Engine("process", num_workers=2) as engine:
            with pytest.raises(RuntimeError, match="failed"):
                engine.map_tasks(boom, [1, 2, 3])
            # The persistent pool outlives a failed phase.
            assert engine.map_tasks(square, [2, 3]) == [4, 9]
            assert engine.pools_created == 1
