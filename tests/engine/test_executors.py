"""Unit tests for repro.engine.executors."""

import numpy as np
import pytest

from repro.engine.executors import Engine


def square(x):
    return x * x


def add_broadcast(x, b):
    return x + b


def touch_items(task):
    return len(task)


class TestSerialEngine:
    def test_results_in_task_order(self):
        engine = Engine("serial")
        assert engine.map_tasks(square, [1, 2, 3]) == [1, 4, 9]

    def test_broadcast_passed(self):
        engine = Engine("serial")
        assert engine.map_tasks(add_broadcast, [1, 2], broadcast=10) == [11, 12]

    def test_task_stats_recorded(self):
        engine = Engine("serial")
        engine.map_tasks(square, [1, 2, 3], phase="p")
        stats = engine.counters.phase_tasks["p"]
        assert [s.task_id for s in stats] == [0, 1, 2]
        assert all(s.wall_time_s >= 0 for s in stats)

    def test_item_counter(self):
        engine = Engine("serial")
        engine.map_tasks(touch_items, [[1, 2], [3]], phase="p", item_counter=len)
        assert engine.counters.items_processed("p") == 3

    def test_phase_time_recorded(self):
        engine = Engine("serial")
        engine.map_tasks(square, [1], phase="ph")
        assert "ph" in engine.counters.phase_seconds

    def test_empty_task_list(self):
        engine = Engine("serial")
        assert engine.map_tasks(square, []) == []


class TestProcessEngine:
    def test_results_match_serial(self):
        tasks = list(range(8))
        serial = Engine("serial").map_tasks(square, tasks)
        parallel = Engine("process", num_workers=2).map_tasks(square, tasks)
        assert serial == parallel

    def test_broadcast_shipped_once_per_worker(self):
        engine = Engine("process", num_workers=2)
        big = np.arange(1000)
        out = engine.map_tasks(add_broadcast, [1, 2, 3, 4], broadcast=big)
        for i, result in enumerate(out):
            np.testing.assert_array_equal(result, big + i + 1)

    def test_single_task_runs_inline(self):
        # One task short-circuits to the serial path (no pool overhead).
        engine = Engine("process", num_workers=4)
        assert engine.map_tasks(square, [3]) == [9]


class TestValidation:
    def test_unknown_mode(self):
        with pytest.raises(ValueError):
            Engine("threads")

    def test_bad_worker_count(self):
        with pytest.raises(ValueError):
            Engine("serial", num_workers=0)


def boom(x):
    raise RuntimeError(f"task {x} failed")


class TestErrorPropagation:
    def test_serial_task_error_propagates(self):
        engine = Engine("serial")
        with pytest.raises(RuntimeError, match="task 1 failed"):
            engine.map_tasks(boom, [1])

    def test_phase_time_still_recorded_on_error(self):
        engine = Engine("serial")
        with pytest.raises(RuntimeError):
            engine.map_tasks(boom, [1], phase="doomed")
        assert "doomed" in engine.counters.phase_seconds
