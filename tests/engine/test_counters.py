"""Unit tests for repro.engine.counters."""

import time

import pytest

from repro.engine.counters import Counters, TaskStats


class TestTaskRecording:
    def test_record_and_read(self):
        counters = Counters()
        counters.record_task("II", TaskStats(0, 0.5, items=100))
        counters.record_task("II", TaskStats(1, 1.0, items=200))
        assert counters.task_times("II") == [0.5, 1.0]
        assert counters.items_processed("II") == 300

    def test_unknown_phase_is_empty(self):
        counters = Counters()
        assert counters.task_times("nope") == []
        assert counters.items_processed("nope") == 0


class TestLoadImbalance:
    def test_perfect_balance(self):
        counters = Counters()
        for i in range(4):
            counters.record_task("II", TaskStats(i, 2.0))
        assert counters.load_imbalance("II") == 1.0

    def test_ratio(self):
        counters = Counters()
        counters.record_task("II", TaskStats(0, 1.0))
        counters.record_task("II", TaskStats(1, 3.0))
        assert counters.load_imbalance("II") == pytest.approx(3.0)

    def test_single_task_is_balanced(self):
        counters = Counters()
        counters.record_task("II", TaskStats(0, 5.0))
        assert counters.load_imbalance("II") == 1.0

    def test_zero_duration_guard(self):
        counters = Counters()
        counters.record_task("II", TaskStats(0, 0.0))
        counters.record_task("II", TaskStats(1, 1.0))
        assert counters.load_imbalance("II") < float("inf")


class TestPhaseTimes:
    def test_accumulation(self):
        counters = Counters()
        counters.add_phase_time("I", 1.0)
        counters.add_phase_time("I", 0.5)
        counters.add_phase_time("II", 2.5)
        assert counters.phase_seconds["I"] == pytest.approx(1.5)
        assert counters.total_seconds() == pytest.approx(4.0)

    def test_timed_phase_context(self):
        counters = Counters()
        with counters.timed_phase("sleepy"):
            time.sleep(0.01)
        assert counters.phase_seconds["sleepy"] >= 0.01

    def test_timed_phase_records_on_exception(self):
        counters = Counters()
        with pytest.raises(RuntimeError):
            with counters.timed_phase("boom"):
                raise RuntimeError()
        assert "boom" in counters.phase_seconds


class TestSetupBucket:
    def test_setup_accumulates(self):
        counters = Counters()
        counters.add_setup_time("pool_startup", 0.5)
        counters.add_setup_time("broadcast_ship", 0.25)
        counters.add_setup_time("broadcast_ship", 0.25)
        assert counters.setup_seconds["broadcast_ship"] == pytest.approx(0.5)
        assert counters.setup_total() == pytest.approx(1.0)

    def test_timed_setup_context(self):
        counters = Counters()
        with counters.timed_setup("warmup"):
            time.sleep(0.01)
        assert counters.setup_seconds["warmup"] >= 0.01

    def test_setup_excluded_from_phases_and_breakdown(self):
        counters = Counters()
        counters.add_phase_time("II", 3.0)
        counters.add_setup_time("pool_startup", 1.0)
        assert counters.total_seconds() == pytest.approx(3.0)
        assert counters.breakdown() == {"II": 1.0}
        assert counters.grand_total_seconds() == pytest.approx(4.0)


class TestWorkerAttribution:
    def test_worker_times(self):
        counters = Counters()
        counters.record_task("II", TaskStats(0, 1.0, worker=101))
        counters.record_task("II", TaskStats(1, 2.0, worker=101))
        counters.record_task("II", TaskStats(2, 1.0, worker=202))
        assert counters.worker_times("II") == {101: pytest.approx(3.0), 202: pytest.approx(1.0)}
        assert counters.worker_imbalance("II") == pytest.approx(3.0)

    def test_missing_worker_attributed_to_driver(self):
        counters = Counters()
        counters.record_task("II", TaskStats(0, 1.0))
        counters.record_task("II", TaskStats(1, 2.0))
        assert counters.worker_times("II") == {"driver": pytest.approx(3.0)}
        assert counters.worker_imbalance("II") == 1.0

    def test_empty_phase(self):
        assert Counters().worker_times("nope") == {}
        assert Counters().worker_imbalance("nope") == 1.0


class TestMarkSince:
    def test_delta_contains_only_new_work(self):
        counters = Counters()
        counters.record_task("II", TaskStats(0, 1.0, items=10))
        counters.add_phase_time("II", 1.0)
        counters.add_setup_time("pool_startup", 0.5)
        mark = counters.mark()
        counters.record_task("II", TaskStats(1, 2.0, items=20))
        counters.record_task("III", TaskStats(0, 0.5))
        counters.add_phase_time("II", 2.0)
        counters.add_phase_time("III", 0.5)
        counters.add_setup_time("broadcast_ship", 0.1)

        delta = counters.since(mark)
        assert delta.task_times("II") == [2.0]
        assert delta.task_times("III") == [0.5]
        assert delta.items_processed("II") == 20
        assert delta.phase_seconds["II"] == pytest.approx(2.0)
        assert delta.setup_seconds == {"broadcast_ship": pytest.approx(0.1)}
        # The source keeps accumulating, untouched by the snapshot.
        assert counters.task_times("II") == [1.0, 2.0]

    def test_empty_delta(self):
        counters = Counters()
        counters.record_task("II", TaskStats(0, 1.0))
        counters.add_phase_time("II", 1.0)
        delta = counters.since(counters.mark())
        assert delta.phase_tasks == {}
        assert delta.phase_seconds == {}
        assert delta.total_seconds() == 0.0

    def test_mark_on_fresh_counters(self):
        counters = Counters()
        mark = counters.mark()
        counters.add_phase_time("I", 1.0)
        delta = counters.since(mark)
        assert delta.phase_seconds == {"I": pytest.approx(1.0)}


class TestBreakdown:
    def test_fractions_sum_to_one(self):
        counters = Counters()
        counters.add_phase_time("a", 1.0)
        counters.add_phase_time("b", 3.0)
        breakdown = counters.breakdown()
        assert sum(breakdown.values()) == pytest.approx(1.0)
        assert breakdown["b"] == pytest.approx(0.75)

    def test_empty_counters(self):
        assert Counters().breakdown() == {}
