"""Unit tests for repro.engine.counters."""

import time

import pytest

from repro.engine.counters import Counters, TaskStats


class TestTaskRecording:
    def test_record_and_read(self):
        counters = Counters()
        counters.record_task("II", TaskStats(0, 0.5, items=100))
        counters.record_task("II", TaskStats(1, 1.0, items=200))
        assert counters.task_times("II") == [0.5, 1.0]
        assert counters.items_processed("II") == 300

    def test_unknown_phase_is_empty(self):
        counters = Counters()
        assert counters.task_times("nope") == []
        assert counters.items_processed("nope") == 0


class TestLoadImbalance:
    def test_perfect_balance(self):
        counters = Counters()
        for i in range(4):
            counters.record_task("II", TaskStats(i, 2.0))
        assert counters.load_imbalance("II") == 1.0

    def test_ratio(self):
        counters = Counters()
        counters.record_task("II", TaskStats(0, 1.0))
        counters.record_task("II", TaskStats(1, 3.0))
        assert counters.load_imbalance("II") == pytest.approx(3.0)

    def test_single_task_is_balanced(self):
        counters = Counters()
        counters.record_task("II", TaskStats(0, 5.0))
        assert counters.load_imbalance("II") == 1.0

    def test_zero_duration_guard(self):
        counters = Counters()
        counters.record_task("II", TaskStats(0, 0.0))
        counters.record_task("II", TaskStats(1, 1.0))
        assert counters.load_imbalance("II") < float("inf")


class TestPhaseTimes:
    def test_accumulation(self):
        counters = Counters()
        counters.add_phase_time("I", 1.0)
        counters.add_phase_time("I", 0.5)
        counters.add_phase_time("II", 2.5)
        assert counters.phase_seconds["I"] == pytest.approx(1.5)
        assert counters.total_seconds() == pytest.approx(4.0)

    def test_timed_phase_context(self):
        counters = Counters()
        with counters.timed_phase("sleepy"):
            time.sleep(0.01)
        assert counters.phase_seconds["sleepy"] >= 0.01

    def test_timed_phase_records_on_exception(self):
        counters = Counters()
        with pytest.raises(RuntimeError):
            with counters.timed_phase("boom"):
                raise RuntimeError()
        assert "boom" in counters.phase_seconds


class TestBreakdown:
    def test_fractions_sum_to_one(self):
        counters = Counters()
        counters.add_phase_time("a", 1.0)
        counters.add_phase_time("b", 3.0)
        breakdown = counters.breakdown()
        assert sum(breakdown.values()) == pytest.approx(1.0)
        assert breakdown["b"] == pytest.approx(0.75)

    def test_empty_counters(self):
        assert Counters().breakdown() == {}
