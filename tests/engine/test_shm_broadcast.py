"""The shared-memory broadcast channel, end to end.

Covers the three layers of the ``shm`` channel:

* :mod:`repro.engine.shm` in isolation — export/import round trips,
  persistent-id hoisting through nested containers, zero-copy read-only
  views, segment naming;
* the engine integration — channel selection (``auto``/``pickle``/
  ``shm``), byte accounting per channel, cross-channel label identity,
  and segment lifecycle (unlinked on close and on re-ship; re-attached,
  not re-created, on pool re-spawn after a chaos-injected worker crash);
* the sharded (budgeted partial-broadcast) payloads — per-shard segment
  round trips, all-or-nothing creation, and label identity under a
  worker-side residency budget;
* leak hygiene — after every scenario, including install failures
  partway through segment creation, no ``rpdbscan_*`` segment remains
  in ``/dev/shm``.
"""

import glob
import threading

import numpy as np
import pytest

from repro.core.cells import CellGeometry
from repro.core.defragmentation import defragment
from repro.core.dictionary import FlatCellDictionary
from repro.core.rp_dbscan import RPDBSCAN
from repro.core.sharding import ShardedFlatDictionary
from repro.engine import Engine, FaultPolicy
from repro.engine.faults import FAULT_RESPAWNS
from repro.engine.shm import (
    SHM_NAME_PREFIX,
    _suppressed_tracker_registration,
    attach_segment,
    create_segment,
    create_sharded_segments,
    destroy_segment,
    export_broadcast,
    export_broadcast_parts,
    import_broadcast,
    import_broadcast_parts,
)

from .test_faults import CHAOS_INJECTOR, _crash_once_injector


def live_segments() -> list[str]:
    """Names of this machine's live RP-DBSCAN shared-memory segments."""
    return sorted(glob.glob(f"/dev/shm/{SHM_NAME_PREFIX}*"))


@pytest.fixture(autouse=True)
def no_leaked_segments():
    """Every test in this module must clean up its segments."""
    assert live_segments() == []
    yield
    assert live_segments() == []


@pytest.fixture(scope="module")
def flat():
    rng = np.random.default_rng(3)
    points = rng.uniform(0, 4, (2000, 2))
    return FlatCellDictionary.from_points(
        points, CellGeometry(eps=0.5, dim=2, rho=0.05)
    )


def lookup_cell(row, flat):
    """Worker body: exercise the attached dictionary's query surface."""
    cell_id = flat.cell_at(row)
    return (
        cell_id,
        int(flat.cell_counts[row]),
        float(flat.sub_cell_centers(cell_id).sum()),
    )


def lookup_nested(row, broadcast):
    flat = broadcast["context"][1]
    return lookup_cell(row, flat)


def add_broadcast(x, b):
    return x + b


def lookup_partial(row, broadcast):
    """Worker body: compare the full and partial dictionary views."""
    full, partial = broadcast["context"]
    rows = np.array([row], dtype=np.int64)
    want = full.gather_subcells(rows)
    got = partial.gather_subcells(rows)
    return all(np.array_equal(g, w) for g, w in zip(got, want))


def _budgeted_sharded(flat, budget=8192):
    return ShardedFlatDictionary.from_defragmented(
        defragment(flat, capacity=200), budget_bytes=budget
    )


class TestExportImport:
    def test_plain_value_exports_to_ordinary_pickle(self):
        import pickle

        blob, flats = export_broadcast({"a": [1, 2, 3]})
        assert flats == []
        assert pickle.loads(blob) == {"a": [1, 2, 3]}

    def test_flat_is_hoisted_and_deduplicated(self, flat):
        value = {"context": ("tag", flat), "again": flat}
        blob, flats = export_broadcast(value)
        assert flats == [flat]
        assert len(blob) < 1000  # the arrays stayed out of the stream

    def test_round_trip_through_segment(self, flat):
        value = {"context": ("tag", flat)}
        blob, flats = export_broadcast(value)
        handle, segment = create_segment(flats)
        try:
            worker_side = attach_segment(handle)
            try:
                rebuilt = import_broadcast(blob, handle, worker_side)
                out = rebuilt["context"][1]
                assert out is not flat
                assert np.array_equal(out.cell_ids, flat.cell_ids)
                assert np.array_equal(out.sub_centers, flat.sub_centers)
                assert np.array_equal(out.sub_coords, flat.sub_coords)
                # Zero-copy: the rebuilt arrays alias the segment buffer.
                assert not out.cell_ids.flags.owndata
                with pytest.raises(ValueError):
                    out.cell_ids[0, 0] = 99
                # The rebuilt dictionary answers queries identically.
                some = flat.cell_at(0)
                assert out.row_of(some) == 0
                assert np.array_equal(out.densities(some), flat.densities(some))
            finally:
                worker_side.close()
        finally:
            destroy_segment(segment)

    def test_segment_names_carry_prefix(self, flat):
        _, flats = export_broadcast(flat)
        handle, segment = create_segment(flats)
        try:
            assert handle.name.startswith(SHM_NAME_PREFIX)
            assert live_segments() == [f"/dev/shm/{handle.name}"]
        finally:
            destroy_segment(segment)


class TestEngineChannels:
    def test_channel_validation(self):
        with pytest.raises(ValueError, match="broadcast channel"):
            Engine("process", broadcast_channel="carrier-pigeon")

    def test_shm_ships_descriptor_not_arrays(self, flat):
        with Engine("process", num_workers=2, broadcast_channel="shm") as engine:
            out = engine.map_tasks(
                lookup_cell, list(range(4)), broadcast=flat, phase="q"
            )
            assert [row[0] for row in out] == [flat.cell_at(r) for r in range(4)]
            shipped = engine.counters.broadcast_bytes
            assert shipped["shm"] < 2000
            assert shipped["shm_segment"] >= flat.cell_ids.nbytes
            assert "pickle" not in shipped
            # The segment is live while the pool can still map tasks...
            assert len(live_segments()) == 1
        # ...and unlinked by close().
        assert live_segments() == []

    def test_pickle_channel_counts_full_payload(self, flat):
        with Engine("process", num_workers=2, broadcast_channel="pickle") as engine:
            engine.map_tasks(lookup_cell, list(range(4)), broadcast=flat, phase="q")
            shipped = engine.counters.broadcast_bytes
            assert "shm" not in shipped
            # The whole columnar payload went down the pipe as pickle.
            assert shipped["pickle"] >= flat.sub_centers.nbytes

    def test_auto_picks_shm_for_flat_payloads(self, flat):
        with Engine("process", num_workers=2) as engine:
            engine.map_tasks(
                lookup_nested,
                list(range(4)),
                broadcast={"context": ("tag", flat)},
                phase="q",
            )
            assert "shm" in engine.counters.broadcast_bytes

    def test_auto_degrades_to_pickle_without_flats(self):
        with Engine("process", num_workers=2) as engine:
            out = engine.map_tasks(add_broadcast, [1, 2], broadcast=10, phase="q")
            assert out == [11, 12]
            assert list(engine.counters.broadcast_bytes) == ["pickle"]

    def test_forced_shm_degrades_to_pickle_without_flats(self):
        with Engine("process", num_workers=2, broadcast_channel="shm") as engine:
            out = engine.map_tasks(add_broadcast, [1, 2], broadcast=10, phase="q")
            assert out == [11, 12]
            assert list(engine.counters.broadcast_bytes) == ["pickle"]

    def test_reship_replaces_segment(self, flat):
        other = FlatCellDictionary.from_points(
            np.random.default_rng(9).uniform(0, 2, (500, 2)), flat.geometry
        )
        with Engine("process", num_workers=2, broadcast_channel="shm") as engine:
            engine.map_tasks(lookup_cell, list(range(4)), broadcast=flat, phase="q")
            first = live_segments()
            engine.map_tasks(lookup_cell, list(range(4)), broadcast=other, phase="q")
            second = live_segments()
            # One live segment at a time: the re-ship unlinked epoch 1.
            assert len(first) == 1 and len(second) == 1
            assert first != second
            assert engine.broadcast_ships == 2


class TestLabelIdentityAcrossChannels:
    def test_labels_bit_identical(self, blobs_with_noise):
        def run(mode, channel):
            with Engine(mode, num_workers=2, broadcast_channel=channel) as engine:
                model = RPDBSCAN(
                    eps=0.3, min_pts=10, num_partitions=6, seed=0, engine=engine
                )
                return model.fit(blobs_with_noise)

        serial = run("serial", "auto")
        for channel in ("pickle", "shm", "auto"):
            result = run("process", channel)
            np.testing.assert_array_equal(result.labels, serial.labels)
            np.testing.assert_array_equal(result.core_mask, serial.core_mask)
        assert live_segments() == []


class TestChaosSegmentHygiene:
    def test_crash_respawn_reships_reusing_segments(self, flat):
        inj = _crash_once_injector("q", 6)
        policy = FaultPolicy(
            max_retries=2, backoff_base_s=0.001, speculative=False, injector=inj
        )
        with Engine(
            "process", num_workers=2, fault_policy=policy, broadcast_channel="shm"
        ) as engine:
            out = engine.map_tasks(
                lookup_cell, list(range(6)), broadcast=flat, phase="q"
            )
            assert [row[0] for row in out] == [flat.cell_at(r) for r in range(6)]
            assert engine.counters.fault_event_count(FAULT_RESPAWNS) == 1
            assert engine.pools_created == 2
            # The respawned pool re-shipped under a fresh epoch, but the
            # segments were kept across the respawn: the replacement
            # workers just re-attach the existing ones (the driver never
            # re-packs gigabytes because a worker died).
            assert engine.broadcast_ships == 2
            assert engine.broadcast_epoch == 2
            assert engine.counters.broadcast_bytes["shm"] > 0
            assert len(live_segments()) == 1
        assert live_segments() == []


class TestTrackerPatch:
    """The resource-tracker suppression patch (attach-only fallback)."""

    def test_reentrant_nesting_restores_once(self):
        from multiprocessing import resource_tracker

        original = resource_tracker.register
        with _suppressed_tracker_registration():
            patched = resource_tracker.register
            assert patched is not original
            with _suppressed_tracker_registration():
                # Re-entry keeps the installed patch instead of stacking
                # a second wrapper around it.
                assert resource_tracker.register is patched
            # The inner exit must not restore early.
            assert resource_tracker.register is patched
        assert resource_tracker.register is original

    def test_non_shm_registrations_pass_through(self, monkeypatch):
        from multiprocessing import resource_tracker

        calls = []
        monkeypatch.setattr(
            resource_tracker, "register", lambda name, rtype: calls.append((name, rtype))
        )
        with _suppressed_tracker_registration():
            resource_tracker.register("/x", "shared_memory")  # suppressed
            resource_tracker.register("/y", "semaphore")  # forwarded
        assert calls == [("/y", "semaphore")]
        resource_tracker.register("/z", "shared_memory")  # restored verbatim
        assert calls[-1] == ("/z", "shared_memory")

    def test_concurrent_suppression_is_serialized(self):
        # The shard LRU cache attaches segments from whatever thread
        # faults a shard in; a racy patch would restore the original out
        # of order and either leak the suppression or drop it mid-attach.
        from multiprocessing import resource_tracker

        original = resource_tracker.register
        errors = []

        def storm():
            try:
                for _ in range(200):
                    with _suppressed_tracker_registration():
                        assert resource_tracker.register is not original
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=storm) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        assert resource_tracker.register is original


class TestShardedSegments:
    def test_round_trip_through_segments(self, flat):
        sharded = _budgeted_sharded(flat)
        blob, flats, shardeds = export_broadcast_parts({"d": sharded})
        assert flats == []
        assert shardeds == [sharded]
        assert len(blob) < 1000  # shards stayed out of the pickle stream
        handle, segments = create_sharded_segments(sharded)
        try:
            assert len(segments) == 1 + sharded.num_shards  # root + leaves
            value, attachments = import_broadcast_parts(blob, None, None, [handle])
            try:
                partial = value["d"]
                assert not partial.cell_ids.flags.writeable  # zero-copy views
                rows = np.arange(flat.num_cells, dtype=np.int64)
                want = flat.gather_subcells(rows)
                got = partial.gather_subcells(rows)
                for got_part, want_part in zip(got, want):
                    np.testing.assert_array_equal(got_part, want_part)
                stats = partial.residency_stats()
                assert stats["peak_resident_bytes"] <= sharded.budget_bytes
                assert stats["shard_evictions"] > 0  # budget actually bit
            finally:
                for attachment in attachments:
                    attachment.close()
        finally:
            for segment in segments:
                destroy_segment(segment)

    def test_create_sharded_segments_all_or_nothing(self, flat, monkeypatch):
        import repro.engine.shm as shm_mod

        sharded = _budgeted_sharded(flat)
        real = shm_mod.pack_arrays
        calls = {"n": 0}

        def failing_pack(arrays):
            calls["n"] += 1
            if calls["n"] == 3:  # root and first shard already created
                raise OSError("synthetic segment-creation failure")
            return real(arrays)

        monkeypatch.setattr(shm_mod, "pack_arrays", failing_pack)
        with pytest.raises(OSError, match="synthetic"):
            create_sharded_segments(sharded)
        # The two segments created before the failure were reclaimed.
        assert live_segments() == []

    def test_engine_install_failure_leaks_nothing(self, flat, monkeypatch):
        import repro.engine.shm as shm_mod

        sharded = _budgeted_sharded(flat)
        broadcast = {"context": (flat, sharded)}

        def failing_create(dictionary):
            raise OSError("synthetic broadcast-install failure")

        with Engine("process", num_workers=2, broadcast_channel="shm") as engine:
            monkeypatch.setattr(shm_mod, "create_sharded_segments", failing_create)
            with pytest.raises(OSError, match="synthetic"):
                engine.map_tasks(
                    lookup_partial, [0, 1], broadcast=broadcast, phase="q"
                )
            # The flat segment packed before the sharded failure was
            # reclaimed: an aborted install never strands a segment.
            assert live_segments() == []
            monkeypatch.undo()
            # The engine survives the failed install — the same value
            # ships cleanly on retry.
            out = engine.map_tasks(
                lookup_partial, [0, 1, 2], broadcast=broadcast, phase="q"
            )
            assert out == [True, True, True]
            for _, stats in engine.collect_broadcast_stats():
                if stats["num_shards"]:
                    assert stats["peak_resident_bytes"] <= sharded.budget_bytes
        assert live_segments() == []


class TestBudgetedFitIdentity:
    def test_budgeted_labels_bit_identical_and_bounded(self, blobs_with_noise):
        budget = 4096
        serial = RPDBSCAN(eps=0.3, min_pts=10, num_partitions=6, seed=0).fit(
            blobs_with_noise
        )
        with Engine("process", num_workers=2, broadcast_channel="shm") as engine:
            budgeted = RPDBSCAN(
                eps=0.3,
                min_pts=10,
                num_partitions=6,
                seed=0,
                engine=engine,
                broadcast_budget=budget,
            ).fit(blobs_with_noise)
        np.testing.assert_array_equal(budgeted.labels, serial.labels)
        np.testing.assert_array_equal(budgeted.core_mask, serial.core_mask)
        residency = budgeted.broadcast_residency
        assert residency is not None
        assert residency["driver"]["budget_bytes"] == budget
        workers = residency["workers"]
        assert workers  # process mode collected per-worker ledgers
        for stats in workers:
            assert stats["peak_resident_bytes"] <= budget
        assert live_segments() == []

    def test_budgeted_fit_survives_chaos_respawn(self, blobs_with_noise):
        serial = RPDBSCAN(eps=0.3, min_pts=10, num_partitions=6, seed=0).fit(
            blobs_with_noise
        )
        policy = FaultPolicy(
            max_retries=8,
            backoff_base_s=0.01,
            backoff_max_s=0.1,
            task_timeout_s=0.4,
            max_respawns=20,
            speculative=False,
            injector=CHAOS_INJECTOR,
        )
        with Engine(
            "process", num_workers=2, fault_policy=policy, broadcast_channel="shm"
        ) as engine:
            chaos = RPDBSCAN(
                eps=0.3,
                min_pts=10,
                num_partitions=6,
                seed=0,
                engine=engine,
                broadcast_budget=4096,
            ).fit(blobs_with_noise)
        # A crash mid-phase re-ships the budgeted broadcast by
        # re-attaching the kept segments; not a single label moves.
        np.testing.assert_array_equal(chaos.labels, serial.labels)
        assert chaos.fault_events.get(FAULT_RESPAWNS, 0) >= 1
        for stats in chaos.broadcast_residency["workers"]:
            assert stats["peak_resident_bytes"] <= 4096
        assert live_segments() == []
