"""The shared-memory broadcast channel, end to end.

Covers the three layers of the ``shm`` channel:

* :mod:`repro.engine.shm` in isolation — export/import round trips,
  persistent-id hoisting through nested containers, zero-copy read-only
  views, segment naming;
* the engine integration — channel selection (``auto``/``pickle``/
  ``shm``), byte accounting per channel, cross-channel label identity,
  and segment lifecycle (unlinked on close, on re-ship, and on pool
  re-spawn after a chaos-injected worker crash);
* leak hygiene — after every scenario, no ``rpdbscan_*`` segment
  remains in ``/dev/shm``.
"""

import glob

import numpy as np
import pytest

from repro.core.cells import CellGeometry
from repro.core.dictionary import FlatCellDictionary
from repro.core.rp_dbscan import RPDBSCAN
from repro.engine import Engine, FaultPolicy
from repro.engine.faults import FAULT_RESPAWNS
from repro.engine.shm import (
    SHM_NAME_PREFIX,
    attach_segment,
    create_segment,
    destroy_segment,
    export_broadcast,
    import_broadcast,
)

from .test_faults import _crash_once_injector


def live_segments() -> list[str]:
    """Names of this machine's live RP-DBSCAN shared-memory segments."""
    return sorted(glob.glob(f"/dev/shm/{SHM_NAME_PREFIX}*"))


@pytest.fixture(autouse=True)
def no_leaked_segments():
    """Every test in this module must clean up its segments."""
    assert live_segments() == []
    yield
    assert live_segments() == []


@pytest.fixture(scope="module")
def flat():
    rng = np.random.default_rng(3)
    points = rng.uniform(0, 4, (2000, 2))
    return FlatCellDictionary.from_points(
        points, CellGeometry(eps=0.5, dim=2, rho=0.05)
    )


def lookup_cell(row, flat):
    """Worker body: exercise the attached dictionary's query surface."""
    cell_id = flat.cell_at(row)
    return (
        cell_id,
        int(flat.cell_counts[row]),
        float(flat.sub_cell_centers(cell_id).sum()),
    )


def lookup_nested(row, broadcast):
    flat = broadcast["context"][1]
    return lookup_cell(row, flat)


def add_broadcast(x, b):
    return x + b


class TestExportImport:
    def test_plain_value_exports_to_ordinary_pickle(self):
        import pickle

        blob, flats = export_broadcast({"a": [1, 2, 3]})
        assert flats == []
        assert pickle.loads(blob) == {"a": [1, 2, 3]}

    def test_flat_is_hoisted_and_deduplicated(self, flat):
        value = {"context": ("tag", flat), "again": flat}
        blob, flats = export_broadcast(value)
        assert flats == [flat]
        assert len(blob) < 1000  # the arrays stayed out of the stream

    def test_round_trip_through_segment(self, flat):
        value = {"context": ("tag", flat)}
        blob, flats = export_broadcast(value)
        handle, segment = create_segment(flats)
        try:
            worker_side = attach_segment(handle)
            try:
                rebuilt = import_broadcast(blob, handle, worker_side)
                out = rebuilt["context"][1]
                assert out is not flat
                assert np.array_equal(out.cell_ids, flat.cell_ids)
                assert np.array_equal(out.sub_centers, flat.sub_centers)
                assert np.array_equal(out.sub_coords, flat.sub_coords)
                # Zero-copy: the rebuilt arrays alias the segment buffer.
                assert not out.cell_ids.flags.owndata
                with pytest.raises(ValueError):
                    out.cell_ids[0, 0] = 99
                # The rebuilt dictionary answers queries identically.
                some = flat.cell_at(0)
                assert out.row_of(some) == 0
                assert np.array_equal(out.densities(some), flat.densities(some))
            finally:
                worker_side.close()
        finally:
            destroy_segment(segment)

    def test_segment_names_carry_prefix(self, flat):
        _, flats = export_broadcast(flat)
        handle, segment = create_segment(flats)
        try:
            assert handle.name.startswith(SHM_NAME_PREFIX)
            assert live_segments() == [f"/dev/shm/{handle.name}"]
        finally:
            destroy_segment(segment)


class TestEngineChannels:
    def test_channel_validation(self):
        with pytest.raises(ValueError, match="broadcast channel"):
            Engine("process", broadcast_channel="carrier-pigeon")

    def test_shm_ships_descriptor_not_arrays(self, flat):
        with Engine("process", num_workers=2, broadcast_channel="shm") as engine:
            out = engine.map_tasks(
                lookup_cell, list(range(4)), broadcast=flat, phase="q"
            )
            assert [row[0] for row in out] == [flat.cell_at(r) for r in range(4)]
            shipped = engine.counters.broadcast_bytes
            assert shipped["shm"] < 2000
            assert shipped["shm_segment"] >= flat.cell_ids.nbytes
            assert "pickle" not in shipped
            # The segment is live while the pool can still map tasks...
            assert len(live_segments()) == 1
        # ...and unlinked by close().
        assert live_segments() == []

    def test_pickle_channel_counts_full_payload(self, flat):
        with Engine("process", num_workers=2, broadcast_channel="pickle") as engine:
            engine.map_tasks(lookup_cell, list(range(4)), broadcast=flat, phase="q")
            shipped = engine.counters.broadcast_bytes
            assert "shm" not in shipped
            # The whole columnar payload went down the pipe as pickle.
            assert shipped["pickle"] >= flat.sub_centers.nbytes

    def test_auto_picks_shm_for_flat_payloads(self, flat):
        with Engine("process", num_workers=2) as engine:
            engine.map_tasks(
                lookup_nested,
                list(range(4)),
                broadcast={"context": ("tag", flat)},
                phase="q",
            )
            assert "shm" in engine.counters.broadcast_bytes

    def test_auto_degrades_to_pickle_without_flats(self):
        with Engine("process", num_workers=2) as engine:
            out = engine.map_tasks(add_broadcast, [1, 2], broadcast=10, phase="q")
            assert out == [11, 12]
            assert list(engine.counters.broadcast_bytes) == ["pickle"]

    def test_forced_shm_degrades_to_pickle_without_flats(self):
        with Engine("process", num_workers=2, broadcast_channel="shm") as engine:
            out = engine.map_tasks(add_broadcast, [1, 2], broadcast=10, phase="q")
            assert out == [11, 12]
            assert list(engine.counters.broadcast_bytes) == ["pickle"]

    def test_reship_replaces_segment(self, flat):
        other = FlatCellDictionary.from_points(
            np.random.default_rng(9).uniform(0, 2, (500, 2)), flat.geometry
        )
        with Engine("process", num_workers=2, broadcast_channel="shm") as engine:
            engine.map_tasks(lookup_cell, list(range(4)), broadcast=flat, phase="q")
            first = live_segments()
            engine.map_tasks(lookup_cell, list(range(4)), broadcast=other, phase="q")
            second = live_segments()
            # One live segment at a time: the re-ship unlinked epoch 1.
            assert len(first) == 1 and len(second) == 1
            assert first != second
            assert engine.broadcast_ships == 2


class TestLabelIdentityAcrossChannels:
    def test_labels_bit_identical(self, blobs_with_noise):
        def run(mode, channel):
            with Engine(mode, num_workers=2, broadcast_channel=channel) as engine:
                model = RPDBSCAN(
                    eps=0.3, min_pts=10, num_partitions=6, seed=0, engine=engine
                )
                return model.fit(blobs_with_noise)

        serial = run("serial", "auto")
        for channel in ("pickle", "shm", "auto"):
            result = run("process", channel)
            np.testing.assert_array_equal(result.labels, serial.labels)
            np.testing.assert_array_equal(result.core_mask, serial.core_mask)
        assert live_segments() == []


class TestChaosSegmentHygiene:
    def test_crash_respawn_reships_fresh_segment(self, flat):
        inj = _crash_once_injector("q", 6)
        policy = FaultPolicy(
            max_retries=2, backoff_base_s=0.001, speculative=False, injector=inj
        )
        with Engine(
            "process", num_workers=2, fault_policy=policy, broadcast_channel="shm"
        ) as engine:
            out = engine.map_tasks(
                lookup_cell, list(range(6)), broadcast=flat, phase="q"
            )
            assert [row[0] for row in out] == [flat.cell_at(r) for r in range(6)]
            assert engine.counters.fault_event_count(FAULT_RESPAWNS) == 1
            assert engine.pools_created == 2
            # The respawned pool re-shipped under a fresh epoch, through
            # a fresh segment; the dead pool's segment was unlinked.
            assert engine.broadcast_ships == 2
            assert engine.broadcast_epoch == 2
            assert engine.counters.broadcast_bytes["shm"] > 0
            assert len(live_segments()) == 1
        assert live_segments() == []
