"""Chaos and observability tests for the engine-scheduled merge plane.

Engine-mode Phase III-1 dispatches every tournament round through
``Engine.map_tasks``, which puts the merge matches inside the same
recovery loop as Phases I/II — so a worker crash, an injected delay past
the task timeout, or a plain exception *mid-tournament* must recover
with labels bit-identical to a fault-free serial run.  Round spans are
the measured (not modeled) record of the tournament, so the merge-round
ledger is asserted here too.

Every injector is found by deterministic seed search (the
``test_faults`` convention): the target fault is pinned at round-1
match 0, and the whole fit's fault window is verified clean elsewhere —
no test relies on luck at run time.
"""

from __future__ import annotations

import glob

import numpy as np
import pytest

from repro.core import PHASE_MERGE, RPDBSCAN
from repro.core.merging import resolve_merge_mode
from repro.engine import (
    FAULT_RESPAWNS,
    FAULT_RETRIES,
    FAULT_TIMEOUTS,
    Engine,
    FaultInjector,
    FaultPolicy,
)
from repro.engine.shm import SHM_NAME_PREFIX
from repro.obs import Tracer, merge_ledger_rows, validate_trace

K = 8  # 8 partitions -> rounds of 4, 2, 1 matches


@pytest.fixture(autouse=True)
def no_leaked_segments():
    """No test here may leak a /dev/shm segment (or inherit one)."""
    pattern = f"/dev/shm/{SHM_NAME_PREFIX}*"
    assert glob.glob(pattern) == []
    yield
    assert glob.glob(pattern) == []


@pytest.fixture(scope="module")
def two_blobs():
    rng = np.random.default_rng(0)
    return np.concatenate(
        [rng.normal([0, 0], 0.15, (250, 2)), rng.normal([3, 3], 0.15, (250, 2))]
    )


@pytest.fixture(scope="module")
def serial_reference(two_blobs):
    return RPDBSCAN(eps=0.3, min_pts=10, num_partitions=K, seed=0).fit(
        two_blobs
    )


def _fit_window(k: int) -> list[tuple[str, int]]:
    """Every (phase, task count) a ``k``-partition engine-mode fit maps.

    Merge rounds halve: round r of an initially-k-graph tournament runs
    ``k >> r`` matches (plus byes, which are not tasks).
    """
    window = [
        ("I-2 dictionary", k),
        ("II cell graph", k),
        ("III-2 labeling", k),
    ]
    matches, round_index = k // 2, 1
    remaining = k - matches
    while matches:
        window.append((f"{PHASE_MERGE} round {round_index}", matches))
        round_index += 1
        matches, remaining = remaining // 2, remaining - remaining // 2
    return window


def _round1_injector(kind: str, k: int = K) -> FaultInjector:
    """An injector whose **only** fault in the fit's executed window is
    one ``kind`` fault at (merge round 1, match 0, attempt 0)."""
    target = f"{PHASE_MERGE} round 1"
    prob = {
        "crash": {"crash_prob": 0.008},
        "delay": {"delay_prob": 0.008, "delay_s": 1.0},
        "exception": {"exception_prob": 0.008},
    }[kind]
    window = _fit_window(k)
    for seed in range(100_000):
        inj = FaultInjector(seed=seed, **prob)
        if not getattr(inj.decide(target, 0, 0), kind):
            continue
        clean = all(
            not inj.decide(phase, task, attempt).any
            for phase, n_tasks in window
            for task in range(n_tasks)
            for attempt in range(4)
            if (phase, task, attempt) != (target, 0, 0)
        )
        if clean:
            return inj
    pytest.fail(f"no single-{kind} chaos seed found for the fit window")


def _chaos_fit(two_blobs, policy, *, k=K, graph_layout="flat"):
    tracer = Tracer()
    with Engine(
        "process", num_workers=4, fault_policy=policy, tracer=tracer
    ) as engine:
        result = RPDBSCAN(
            eps=0.3,
            min_pts=10,
            num_partitions=k,
            seed=0,
            engine=engine,
            merge_mode="engine",
            graph_layout=graph_layout,
        ).fit(two_blobs)
    return result, tracer


class TestMergeRoundChaos:
    def test_worker_crash_mid_tournament(self, two_blobs, serial_reference):
        policy = FaultPolicy(
            max_retries=4,
            backoff_base_s=0.01,
            max_respawns=4,
            speculative=False,
            injector=_round1_injector("crash"),
        )
        result, tracer = _chaos_fit(two_blobs, policy)
        np.testing.assert_array_equal(result.labels, serial_reference.labels)
        assert result.n_clusters == serial_reference.n_clusters
        assert result.fault_events.get(FAULT_RESPAWNS, 0) >= 1
        validate_trace(tracer.spans)

    @pytest.mark.parametrize("graph_layout", ["flat", "dict"])
    def test_exception_mid_tournament(
        self, two_blobs, serial_reference, graph_layout
    ):
        policy = FaultPolicy(
            max_retries=4,
            backoff_base_s=0.001,
            speculative=False,
            injector=_round1_injector("exception"),
        )
        result, tracer = _chaos_fit(
            two_blobs, policy, graph_layout=graph_layout
        )
        np.testing.assert_array_equal(result.labels, serial_reference.labels)
        assert result.fault_events.get(FAULT_RETRIES, 0) >= 1
        validate_trace(tracer.spans)

    def test_delay_past_task_timeout_mid_tournament(
        self, two_blobs, serial_reference
    ):
        policy = FaultPolicy(
            max_retries=4,
            backoff_base_s=0.01,
            task_timeout_s=0.4,
            speculative=False,
            injector=_round1_injector("delay"),
        )
        result, tracer = _chaos_fit(two_blobs, policy)
        np.testing.assert_array_equal(result.labels, serial_reference.labels)
        assert result.fault_events.get(FAULT_TIMEOUTS, 0) >= 1
        validate_trace(tracer.spans)

    def test_bye_rounds_under_chaos(self, two_blobs):
        # k=5: rounds of 2, 1, 1 matches with a bye in every round.  The
        # carried-over blob must survive a round-1 exception unharmed.
        serial = RPDBSCAN(eps=0.3, min_pts=10, num_partitions=5, seed=0).fit(
            two_blobs
        )
        policy = FaultPolicy(
            max_retries=4,
            backoff_base_s=0.001,
            speculative=False,
            injector=_round1_injector("exception", k=5),
        )
        result, _ = _chaos_fit(two_blobs, policy, k=5)
        np.testing.assert_array_equal(result.labels, serial.labels)
        assert result.merge_stats.num_rounds == 3

    def test_single_partition_never_reaches_the_pool(self, two_blobs):
        # k=1: no matches, no rounds, nothing to crash.
        serial = RPDBSCAN(eps=0.3, min_pts=10, num_partitions=1, seed=0).fit(
            two_blobs
        )
        policy = FaultPolicy(max_retries=2, speculative=False)
        result, tracer = _chaos_fit(two_blobs, policy, k=1)
        np.testing.assert_array_equal(result.labels, serial.labels)
        assert result.merge_stats.num_rounds == 0
        assert merge_ledger_rows(tracer.spans) == []


class TestMergeLedger:
    def test_round_spans_and_counters(self, two_blobs, serial_reference):
        result, tracer = _chaos_fit(
            two_blobs, FaultPolicy(max_retries=2, speculative=False)
        )
        np.testing.assert_array_equal(result.labels, serial_reference.labels)
        stats = result.merge_stats
        assert stats.mode == "engine"
        assert stats.span_is_measured
        assert stats.num_rounds == 3

        # One annotated round span per round, in round order, matching
        # the MergeStats accounting.
        rows = merge_ledger_rows(tracer.spans)
        assert [row[0] for row in rows] == [1, 2, 3]
        assert [row[1] for row in rows] == [4, 2, 1]  # matches per round
        assert [row[2] for row in rows] == stats.edges_per_round[:-1]
        assert [row[3] for row in rows] == stats.edges_per_round[1:]
        assert [row[4] for row in rows] == stats.resolved_per_round
        assert [row[5] for row in rows] == stats.removed_per_round

        # Measured walls: every round recorded a positive wall time and
        # shipped serialized bytes through the pool.
        assert len(stats.round_wall_seconds) == 3
        assert all(wall > 0 for wall in stats.round_wall_seconds)
        assert all(b > 0 for b in stats.bytes_shipped_per_round)
        assert stats.measured_span_seconds() == pytest.approx(
            sum(stats.round_wall_seconds)
        )

        # The counters mirror one ledger row per round.
        assert len(result.counters.merge_rounds) == 3
        assert [r["resolved"] for r in result.counters.merge_rounds] == (
            stats.resolved_per_round
        )
        validate_trace(tracer.spans)

    def test_driver_mode_records_no_round_spans(self, two_blobs):
        tracer = Tracer()
        with Engine("process", num_workers=2, tracer=tracer) as engine:
            result = RPDBSCAN(
                eps=0.3,
                min_pts=10,
                num_partitions=4,
                seed=0,
                engine=engine,
                merge_mode="driver",
            ).fit(two_blobs)
        assert result.merge_stats.mode == "driver"
        assert not result.merge_stats.span_is_measured
        assert merge_ledger_rows(tracer.spans) == []
        # Driver mode still keeps its per-round accounting in MergeStats.
        assert len(result.merge_stats.round_wall_seconds) == 2
        validate_trace(tracer.spans)


class TestAutoMode:
    def test_auto_resolution_rules(self, two_blobs):
        from repro.core.construction import build_cell_subgraph  # noqa: F401

        class _Fake:
            def __init__(self, num_edges):
                self.num_edges = num_edges

        big = [_Fake(10_000) for _ in range(4)]
        small = [_Fake(10) for _ in range(4)]
        with Engine("process", num_workers=2) as engine:
            assert resolve_merge_mode("auto", big, engine) == "engine"
            assert resolve_merge_mode("auto", small, engine) == "driver"
            assert resolve_merge_mode("auto", big[:2], engine) == "driver"
        serial = Engine("serial")
        assert resolve_merge_mode("auto", big, serial) == "driver"
        assert resolve_merge_mode("auto", big, None) == "driver"
        with pytest.raises(ValueError, match="engine"):
            resolve_merge_mode("engine", big, None)
        with pytest.raises(ValueError, match="merge_mode"):
            resolve_merge_mode("bogus", big, serial)
