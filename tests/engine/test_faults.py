"""Chaos tests: fault injection against the engine's recovery loop.

The injector is deterministic per ``(seed, phase, task_id, attempt)``,
so every test here either uses a seed whose full fault map was verified
by construction (see :data:`CHAOS_INJECTOR`) or searches for a seed
satisfying an explicit predicate via ``FaultInjector.decide`` — no test
relies on luck at run time.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core import PHASES, RPDBSCAN
from repro.engine import (
    FAULT_RESPAWNS,
    FAULT_RETRIES,
    FAULT_SPECULATIONS,
    FAULT_TIMEOUTS,
    Engine,
    FaultInjector,
    FaultPolicy,
    InjectedFault,
    PhaseTimeoutError,
    TaskFailedError,
)
from repro.kernels import HAVE_NUMBA

# ----------------------------------------------------------------------
# Picklable task functions (process mode requires module-level defs).
# ----------------------------------------------------------------------


def square(x):
    return x * x


def boom(x):
    raise RuntimeError(f"task {x} failed")


def add_broadcast(x, b):
    return x + b


def sleep_task(task):
    """Task = ``(sleep_s, value)``: sleep, then return ``value**2``."""
    sleep_s, value = task
    if sleep_s:
        time.sleep(sleep_s)
    return value * value


# ----------------------------------------------------------------------
# Seed search helpers (deterministic, driver-side, cheap).
# ----------------------------------------------------------------------


def _first_clean_attempts(
    injector: FaultInjector, phase: str, n_tasks: int, window: int = 8
) -> list[int]:
    """Per task, the first attempt index with no fault drawn."""
    firsts = []
    for task_id in range(n_tasks):
        first = next(
            (
                a
                for a in range(window)
                if not injector.decide(phase, task_id, a).any
            ),
            None,
        )
        assert first is not None, "injector seed leaves a task permanently doomed"
        firsts.append(first)
    return firsts


def _exception_only_injector(phase: str, n_tasks: int) -> FaultInjector:
    """An injector that raises for >=1 attempt-0 task of ``phase``, with
    every retry attempt clean — recovery is guaranteed in one round."""
    for seed in range(10_000):
        inj = FaultInjector(exception_prob=0.2, seed=seed)
        hit = [inj.decide(phase, t, 0).exception for t in range(n_tasks)]
        clean = all(
            not inj.decide(phase, t, a).any
            for t in range(n_tasks)
            for a in (1, 2, 3)
        )
        if any(hit) and clean:
            return inj
    pytest.fail("no suitable exception-chaos seed found")


def _crash_once_injector(phase: str, n_tasks: int) -> FaultInjector:
    """An injector whose only fault in the executed window is a worker
    crash at ``(task 0, attempt 0)`` of ``phase``."""
    for seed in range(10_000):
        inj = FaultInjector(crash_prob=0.04, seed=seed)
        crashes = [
            (t, a)
            for t in range(n_tasks)
            for a in range(4)
            if inj.decide(phase, t, a).any
        ]
        if crashes == [(0, 0)] and inj.decide(phase, 0, 0).crash:
            return inj
    pytest.fail("no suitable crash-chaos seed found")


# ----------------------------------------------------------------------
# FaultInjector
# ----------------------------------------------------------------------


class TestFaultInjector:
    def test_decisions_are_deterministic(self):
        inj = FaultInjector(crash_prob=0.3, delay_prob=0.3, exception_prob=0.3, seed=5)
        for task_id in range(20):
            assert inj.decide("II", task_id, 1) == inj.decide("II", task_id, 1)

    def test_retry_draws_its_own_decision(self):
        # A doomed attempt 0 must not doom attempt 1: decisions vary
        # with the attempt index.
        inj = FaultInjector(exception_prob=0.5, seed=0)
        draws = [inj.decide("p", 0, a).exception for a in range(32)]
        assert True in draws and False in draws

    def test_decisions_vary_by_phase_and_task(self):
        inj = FaultInjector(exception_prob=0.5, seed=0)
        by_task = {inj.decide("p", t, 0).exception for t in range(32)}
        by_phase = {inj.decide(p, 0, 0).exception for p in map(str, range(32))}
        assert by_task == {True, False}
        assert by_phase == {True, False}

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"crash_prob": 1.5},
            {"delay_prob": -0.1},
            {"exception_prob": 2.0},
            {"delay_s": -1.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            FaultInjector(**kwargs)

    def test_apply_raises_injected_exception(self):
        inj = FaultInjector(exception_prob=1.0)
        with pytest.raises(InjectedFault, match="injected exception"):
            inj.apply("p", 0, 0, allow_crash=True)

    def test_apply_crash_degrades_when_crash_disallowed(self):
        # Inline execution cannot kill the driver: the crash decision
        # must degrade to an exception instead of os._exit.
        inj = FaultInjector(crash_prob=1.0)
        with pytest.raises(InjectedFault, match="inline degrade"):
            inj.apply("p", 0, 0, allow_crash=False)

    def test_apply_delay_sleeps(self):
        inj = FaultInjector(delay_prob=1.0, delay_s=0.05)
        start = time.perf_counter()
        inj.apply("p", 0, 0, allow_crash=True)
        assert time.perf_counter() - start >= 0.05

    def test_zero_prob_injector_is_inert(self):
        inj = FaultInjector()
        for task_id in range(50):
            assert not inj.decide("p", task_id, 0).any
        inj.apply("p", 0, 0, allow_crash=True)  # no sleep, no raise


# ----------------------------------------------------------------------
# FaultPolicy
# ----------------------------------------------------------------------


class TestFaultPolicy:
    def test_backoff_schedule(self):
        policy = FaultPolicy(backoff_base_s=0.05, backoff_factor=2.0, backoff_max_s=2.0)
        assert policy.backoff(1) == pytest.approx(0.05)
        assert policy.backoff(2) == pytest.approx(0.10)
        assert policy.backoff(4) == pytest.approx(0.40)
        assert policy.backoff(10) == 2.0  # capped
        assert policy.backoff(0) == 0.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_retries": -1},
            {"backoff_base_s": -0.1},
            {"backoff_factor": 0.5},
            {"task_timeout_s": 0.0},
            {"phase_timeout_s": -1.0},
            {"straggler_factor": 0.9},
            {"max_respawns": -1},
            {"poll_interval_s": 0.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            FaultPolicy(**kwargs)


# ----------------------------------------------------------------------
# Inline (serial-mode) retries
# ----------------------------------------------------------------------


class TestInlineRetries:
    def test_retries_recover_with_exact_count(self):
        n = 10
        inj = _exception_only_injector("p", n)
        policy = FaultPolicy(max_retries=5, backoff_base_s=0.001, injector=inj)
        engine = Engine("serial", fault_policy=policy)
        assert engine.map_tasks(square, list(range(n)), phase="p") == [
            x * x for x in range(n)
        ]
        expected = sum(_first_clean_attempts(inj, "p", n))
        assert expected >= 1
        assert engine.counters.fault_event_count(FAULT_RETRIES) == expected

    def test_budget_exhaustion(self):
        engine = Engine("serial", fault_policy=FaultPolicy(max_retries=1, backoff_base_s=0.001))
        with pytest.raises(TaskFailedError, match="retry budget"):
            engine.map_tasks(boom, [1, 2], phase="p")
        assert engine.counters.fault_event_count(FAULT_RETRIES) == 1

    def test_crash_decision_degrades_to_task_failure(self):
        # Serial mode: an injected "crash" cannot kill the driver, so it
        # surfaces as a TaskFailedError chaining the InjectedFault.
        policy = FaultPolicy(max_retries=0, injector=FaultInjector(crash_prob=1.0))
        engine = Engine("serial", fault_policy=policy)
        with pytest.raises(TaskFailedError) as excinfo:
            engine.map_tasks(square, [1, 2], phase="p")
        assert isinstance(excinfo.value.__cause__, InjectedFault)


# ----------------------------------------------------------------------
# The process-mode recovery loop
# ----------------------------------------------------------------------


class TestRecoveryLoop:
    def test_calm_path_runs_clean(self):
        policy = FaultPolicy(max_retries=2, speculative=False)
        with Engine("process", num_workers=2, fault_policy=policy) as engine:
            out = engine.map_tasks(square, list(range(8)), phase="p")
            assert out == [x * x for x in range(8)]
            assert engine.counters.fault_total() == 0
            assert len(engine.counters.phase_tasks["p"]) == 8

    def test_injected_exceptions_are_retried(self):
        n = 8
        inj = _exception_only_injector("p", n)
        policy = FaultPolicy(
            max_retries=5, backoff_base_s=0.001, speculative=False, injector=inj
        )
        with Engine("process", num_workers=2, fault_policy=policy) as engine:
            out = engine.map_tasks(square, list(range(n)), phase="p")
            assert out == [x * x for x in range(n)]
            expected = sum(_first_clean_attempts(inj, "p", n))
            assert engine.counters.fault_event_count(FAULT_RETRIES) == expected

    def test_broadcast_flows_through_recovery_loop(self):
        policy = FaultPolicy(max_retries=2, speculative=False)
        with Engine("process", num_workers=2, fault_policy=policy) as engine:
            out = engine.map_tasks(add_broadcast, list(range(6)), broadcast=100, phase="p")
            assert out == [100 + x for x in range(6)]
            assert engine.broadcast_ships == 1

    def test_budget_exhaustion_and_engine_survives(self):
        policy = FaultPolicy(max_retries=1, backoff_base_s=0.001, speculative=False)
        with Engine("process", num_workers=2, fault_policy=policy) as engine:
            with pytest.raises(TaskFailedError, match="retry budget"):
                engine.map_tasks(boom, [1, 2, 3], phase="doomed")
            # The pool outlives the failed phase.
            assert engine.map_tasks(square, [2, 3], phase="after") == [4, 9]

    def test_task_timeout_keeps_listening(self):
        # Task 0 sleeps past the timeout; its retry is launched but the
        # loop keeps listening, and whichever attempt finishes first
        # wins — the phase must complete with correct results.
        tasks = [(1.0, 0), (0, 1), (0, 2), (0, 3)]
        policy = FaultPolicy(
            max_retries=3,
            backoff_base_s=0.001,
            task_timeout_s=0.3,
            speculative=False,
        )
        with Engine("process", num_workers=2, fault_policy=policy) as engine:
            out = engine.map_tasks(sleep_task, tasks, phase="p")
            assert out == [0, 1, 4, 9]
            assert engine.counters.fault_event_count(FAULT_TIMEOUTS) >= 1
            assert engine.counters.fault_event_count(FAULT_RETRIES) >= 1

    def test_phase_timeout(self):
        tasks = [(5.0, i) for i in range(4)]
        policy = FaultPolicy(phase_timeout_s=0.5, speculative=False)
        with Engine("process", num_workers=2, fault_policy=policy) as engine:
            start = time.perf_counter()
            with pytest.raises(PhaseTimeoutError, match="exceeded"):
                engine.map_tasks(sleep_task, tasks, phase="p")
            # Fails promptly, not after the 5 s sleepers finish.
            assert time.perf_counter() - start < 3.0
            assert engine.counters.fault_event_count(FAULT_TIMEOUTS) >= 1

    def test_straggler_speculation(self):
        tasks = [(1.2, 0)] + [(0, i) for i in range(1, 8)]
        policy = FaultPolicy(
            max_retries=0,
            speculative=True,
            straggler_factor=2.0,
            straggler_min_wait_s=0.2,
            speculation_min_done=2,
        )
        with Engine("process", num_workers=4, fault_policy=policy) as engine:
            out = engine.map_tasks(sleep_task, tasks, phase="p")
            assert out == [x * x for x in range(8)]
            assert engine.counters.fault_event_count(FAULT_SPECULATIONS) == 1

    def test_worker_crash_triggers_respawn_and_broadcast_reship(self):
        inj = _crash_once_injector("p", 6)
        policy = FaultPolicy(
            max_retries=2, backoff_base_s=0.001, speculative=False, injector=inj
        )
        with Engine("process", num_workers=2, fault_policy=policy) as engine:
            out = engine.map_tasks(add_broadcast, list(range(6)), broadcast=10, phase="p")
            assert out == [10 + x for x in range(6)]
            assert engine.counters.fault_event_count(FAULT_RESPAWNS) == 1
            # The replacement pool got the broadcast under a fresh epoch.
            assert engine.pools_created == 2
            assert engine.broadcast_ships == 2
            # Respawned-task re-runs are the pool's fault, not the
            # tasks': no retry budget was consumed.
            assert engine.counters.fault_event_count(FAULT_RETRIES) == 0

    def test_respawn_budget_exhausted(self):
        policy = FaultPolicy(
            max_respawns=1,
            speculative=False,
            injector=FaultInjector(crash_prob=1.0),
        )
        with Engine("process", num_workers=2, fault_policy=policy) as engine:
            with pytest.raises(TaskFailedError, match="re-spawn budget"):
                engine.map_tasks(square, [1, 2, 3], phase="p")
            assert engine.counters.fault_event_count(FAULT_RESPAWNS) == 1


# ----------------------------------------------------------------------
# Counter accounting for fault events
# ----------------------------------------------------------------------


class TestFaultEventAccounting:
    def test_events_never_enter_phase_breakdowns(self):
        n = 6
        inj = _exception_only_injector("p", n)
        policy = FaultPolicy(max_retries=5, backoff_base_s=0.001, injector=inj)
        engine = Engine("serial", fault_policy=policy)
        engine.map_tasks(square, list(range(n)), phase="p")
        counters = engine.counters
        assert counters.fault_total() >= 1
        assert set(counters.phase_seconds) == {"p"}
        assert set(counters.breakdown()) == {"p"}
        # total_seconds is a pure sum of phase time; fault buckets are
        # counts, invisible to every timing view.
        assert counters.total_seconds() == pytest.approx(
            sum(counters.phase_seconds.values())
        )

    def test_mark_since_snapshots_fault_events(self):
        n = 6
        inj = _exception_only_injector("p", n)
        policy = FaultPolicy(max_retries=5, backoff_base_s=0.001, injector=inj)
        engine = Engine("serial", fault_policy=policy)
        engine.map_tasks(square, list(range(n)), phase="p")
        first_run = engine.counters.fault_event_count(FAULT_RETRIES)
        mark = engine.counters.mark()
        engine.map_tasks(square, list(range(n)), phase="p")
        delta = engine.counters.since(mark)
        # The injector replays the same faults, so the delta equals the
        # first run's ledger and the lifetime total is their sum.
        assert delta.fault_event_count(FAULT_RETRIES) == first_run
        assert engine.counters.fault_event_count(FAULT_RETRIES) == 2 * first_run


# ----------------------------------------------------------------------
# Acceptance: chaos during a full fit() leaves labels untouched
# ----------------------------------------------------------------------

#: Seed 1 was picked by exhaustively checking the injector's decision
#: table for the three parallel phases (6 tasks each, attempts 0-4):
#:
#: * ``I-2 dictionary`` task 1, attempt 0 — worker **crash** → pool
#:   re-spawn with a broadcast re-ship under a fresh epoch;
#: * ``II cell graph`` task 0, attempt 0 — 1 s **delay** → exceeds the
#:   0.4 s task timeout → timeout + retry (the loop keeps listening);
#: * ``II cell graph`` task 1 and ``III-2 labeling`` task 1, attempt 0 —
#:   injected **exceptions** → retries;
#: * every retry attempt that can execute is fault-free, so the run
#:   converges well inside the retry/respawn budgets.
CHAOS_INJECTOR = FaultInjector(
    crash_prob=0.06, delay_prob=0.06, exception_prob=0.12, delay_s=1.0, seed=1
)


class TestChaosFitAcceptance:
    def test_fit_under_chaos_matches_fault_free_serial(self, two_blobs):
        serial = RPDBSCAN(eps=0.3, min_pts=10, num_partitions=6, seed=0).fit(two_blobs)
        policy = FaultPolicy(
            max_retries=8,
            backoff_base_s=0.01,
            backoff_max_s=0.1,
            task_timeout_s=0.4,
            max_respawns=20,
            # Speculation is covered by its own test; here it would race
            # the delayed task to completion before the 0.4 s timeout
            # latches, hiding the timeout path this test pins down.
            speculative=False,
            injector=CHAOS_INJECTOR,
        )
        with Engine("process", num_workers=2, fault_policy=policy) as engine:
            chaos = RPDBSCAN(
                eps=0.3, min_pts=10, num_partitions=6, seed=0, engine=engine
            ).fit(two_blobs)

        # Crashes, delays, timeouts, and exceptions during Phases I-III
        # must not change a single label.
        np.testing.assert_array_equal(chaos.labels, serial.labels)
        assert chaos.n_clusters == serial.n_clusters

        # Every injected fault class was exercised and recovered from.
        events = chaos.fault_events
        assert events.get(FAULT_RETRIES, 0) >= 1
        assert events.get(FAULT_TIMEOUTS, 0) >= 1
        assert events.get(FAULT_RESPAWNS, 0) >= 1

        # Recovery never leaks into the paper's phase accounting: the
        # breakdown contains algorithm phases only.
        assert set(chaos.counters.phase_seconds) <= set(PHASES)
        assert set(chaos.counters.breakdown()) <= set(PHASES)
        assert set(events) <= {
            FAULT_RETRIES,
            FAULT_TIMEOUTS,
            FAULT_RESPAWNS,
            FAULT_SPECULATIONS,
        }

    def test_fit_under_exception_chaos_serial_engine(self, two_blobs):
        # The inline retry path recovers a whole serial fit too.
        serial = RPDBSCAN(eps=0.3, min_pts=10, num_partitions=6, seed=0).fit(two_blobs)
        policy = FaultPolicy(
            max_retries=8,
            backoff_base_s=0.001,
            injector=FaultInjector(exception_prob=0.2, seed=3),
        )
        engine = Engine("serial", fault_policy=policy)
        chaos = RPDBSCAN(
            eps=0.3, min_pts=10, num_partitions=6, seed=0, engine=engine
        ).fit(two_blobs)
        np.testing.assert_array_equal(chaos.labels, serial.labels)


class TestChaosKernelAxis:
    """The chaos acceptance tests along the Phase II kernel axis.

    Crashes/timeouts during the kernel-executed Phase II must recover
    bit-identical to the fault-free serial numpy fit, and a respawned
    pool must re-warm the kernel: the engine re-ships the broadcast
    (with the Phase II warm-up hook) to every fresh pool, so the
    fresh workers JIT-compile under the setup bucket before taking
    tasks.  The ``python`` backend (the uncompiled kernel source) runs
    everywhere; the ``numba`` parametrization skips without numba.
    """

    KERNELS_UNDER_CHAOS = [
        "python",
        pytest.param(
            "numba",
            marks=pytest.mark.skipif(not HAVE_NUMBA, reason="numba not installed"),
        ),
    ]

    @pytest.mark.parametrize("kernel", KERNELS_UNDER_CHAOS)
    def test_fit_under_chaos_recovers_bit_identical(self, two_blobs, kernel):
        serial = RPDBSCAN(
            eps=0.3, min_pts=10, num_partitions=6, seed=0, kernel="numpy"
        ).fit(two_blobs)
        policy = FaultPolicy(
            max_retries=8,
            backoff_base_s=0.01,
            backoff_max_s=0.1,
            task_timeout_s=2.0,
            max_respawns=20,
            speculative=False,
            injector=FaultInjector(crash_prob=0.06, exception_prob=0.12, seed=1),
        )
        with Engine("process", num_workers=2, fault_policy=policy) as engine:
            chaos = RPDBSCAN(
                eps=0.3,
                min_pts=10,
                num_partitions=6,
                seed=0,
                engine=engine,
                kernel=kernel,
            ).fit(two_blobs)

        np.testing.assert_array_equal(chaos.labels, serial.labels)
        np.testing.assert_array_equal(chaos.core_mask, serial.core_mask)
        assert chaos.kernel == kernel

        # Same seed-1 fault table as TestChaosFitAcceptance: the crash
        # (respawn) and exception (retry) classes both fired, and every
        # recovery stayed out of the phase buckets.
        events = chaos.fault_events
        assert events.get(FAULT_RETRIES, 0) >= 1
        assert events.get(FAULT_RESPAWNS, 0) >= 1
        assert set(chaos.counters.phase_seconds) <= set(PHASES)

        # Re-warm happened: the initial ship plus one per respawn all
        # ran the warm-up hook under the setup bucket.
        assert "warmup" in chaos.counters.setup_seconds
        assert engine.broadcast_ships >= 2

    @pytest.mark.parametrize("kernel", KERNELS_UNDER_CHAOS)
    def test_phase2_timeout_recovers_bit_identical(self, two_blobs, kernel):
        # A 1 s injected delay against a 0.4 s task timeout: the Phase II
        # attempt times out mid-kernel, the retry lands clean.
        serial = RPDBSCAN(
            eps=0.3, min_pts=10, num_partitions=6, seed=0, kernel="numpy"
        ).fit(two_blobs)
        policy = FaultPolicy(
            max_retries=8,
            backoff_base_s=0.01,
            backoff_max_s=0.1,
            task_timeout_s=0.4,
            max_respawns=20,
            speculative=False,
            injector=FaultInjector(delay_prob=0.06, delay_s=1.0, seed=1),
        )
        with Engine("process", num_workers=2, fault_policy=policy) as engine:
            chaos = RPDBSCAN(
                eps=0.3,
                min_pts=10,
                num_partitions=6,
                seed=0,
                engine=engine,
                kernel=kernel,
            ).fit(two_blobs)
        np.testing.assert_array_equal(chaos.labels, serial.labels)
        assert chaos.fault_events.get(FAULT_TIMEOUTS, 0) >= 1
