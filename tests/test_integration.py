"""Integration tests: end-to-end equivalence across all algorithms.

Corollary 3.6 / Table 4: RP-DBSCAN's clustering is equivalent to exact
DBSCAN's at small rho, and every parallel baseline (except the naive
random split and the approximate NG-DBSCAN) agrees too.
"""

import numpy as np
import pytest

from repro import RPDBSCAN
from repro.baselines import (
    CBPDBSCAN,
    ESPDBSCAN,
    ExactDBSCAN,
    NGDBSCAN,
    RBPDBSCAN,
    RhoDBSCAN,
    SparkDBSCAN,
)
from repro.data import blobs, chameleon_like, moons
from repro.metrics import adjusted_rand_index, rand_index


@pytest.fixture(scope="module")
def workloads():
    return {
        "moons": (moons(2500, seed=0), 0.1, 10),
        "blobs": (blobs(2500, centers=3, std=0.3, spread=6.0, seed=0), 0.25, 10),
        "chameleon": (chameleon_like(2500, seed=0), 0.22, 8),
    }


class TestRPDBSCANEquivalence:
    @pytest.mark.parametrize("name", ["moons", "blobs", "chameleon"])
    def test_rand_index_one_at_default_rho(self, workloads, name):
        pts, eps, min_pts = workloads[name]
        exact = ExactDBSCAN(eps, min_pts).fit(pts)
        rp = RPDBSCAN(eps, min_pts, num_partitions=8, rho=0.01).fit(pts)
        assert rand_index(exact.labels, rp.labels) >= 0.9999

    @pytest.mark.parametrize("rho", [0.10, 0.05, 0.01])
    def test_table4_band(self, workloads, rho):
        # Table 4: Rand index >= 0.98 even at rho = 0.10.
        pts, eps, min_pts = workloads["chameleon"]
        exact = ExactDBSCAN(eps, min_pts).fit(pts)
        rp = RPDBSCAN(eps, min_pts, num_partitions=8, rho=rho).fit(pts)
        assert rand_index(exact.labels, rp.labels) >= 0.98

    def test_core_masks_match_exact(self, workloads):
        pts, eps, min_pts = workloads["blobs"]
        exact = ExactDBSCAN(eps, min_pts).fit(pts)
        rp = RPDBSCAN(eps, min_pts, num_partitions=4, rho=0.001).fit(pts)
        # At rho=0.001 core decisions differ only on razor-edge ties.
        disagreement = np.count_nonzero(exact.core_mask != rp.core_mask)
        assert disagreement <= 2


class TestBaselineEquivalence:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda eps, mp: RhoDBSCAN(eps, mp, rho=0.01),
            lambda eps, mp: ESPDBSCAN(eps, mp, 4, rho=0.01),
            lambda eps, mp: RBPDBSCAN(eps, mp, 4, rho=0.01),
            lambda eps, mp: CBPDBSCAN(eps, mp, 4, rho=0.01),
            lambda eps, mp: SparkDBSCAN(eps, mp, 4),
        ],
        ids=["rho", "esp", "rbp", "cbp", "spark"],
    )
    def test_agree_with_exact(self, workloads, factory):
        pts, eps, min_pts = workloads["blobs"]
        exact = ExactDBSCAN(eps, min_pts).fit(pts)
        result = factory(eps, min_pts).fit(pts)
        assert result.n_clusters == exact.n_clusters
        assert rand_index(exact.labels, result.labels) >= 0.995

    def test_ng_dbscan_approximates(self, workloads):
        pts, eps, min_pts = workloads["blobs"]
        exact = ExactDBSCAN(eps, min_pts).fit(pts)
        ng = NGDBSCAN(eps, min_pts, seed=0).fit(pts)
        assert adjusted_rand_index(exact.labels, ng.labels) >= 0.9


class TestParallelInvariants:
    def test_rp_never_duplicates(self, workloads):
        pts, eps, min_pts = workloads["moons"]
        rp = RPDBSCAN(eps, min_pts, num_partitions=8).fit(pts)
        assert rp.points_processed == pts.shape[0]

    def test_region_split_duplicates(self, workloads):
        pts, eps, min_pts = workloads["moons"]
        esp = ESPDBSCAN(eps, min_pts, 8).fit(pts)
        assert esp.points_processed > pts.shape[0]

    def test_noise_agreement(self, workloads):
        pts, eps, min_pts = workloads["chameleon"]
        exact = ExactDBSCAN(eps, min_pts).fit(pts)
        rp = RPDBSCAN(eps, min_pts, num_partitions=8).fit(pts)
        assert abs(exact.noise_count - rp.noise_count) <= 3
