"""Unit tests for the rp-dbscan CLI."""

import numpy as np
import pytest

from repro.cli import main
from repro.data.io import load_labels, save_points


@pytest.fixture()
def point_file(tmp_path, two_blobs):
    path = tmp_path / "pts.npy"
    save_points(path, two_blobs)
    return str(path)


class TestGenerate:
    def test_generates_dataset(self, tmp_path, capsys):
        out = tmp_path / "geo.npy"
        code = main(
            ["generate", "--dataset", "GeoLife", "--n", "200", "--out", str(out)]
        )
        assert code == 0
        assert np.load(out).shape == (200, 3)
        assert "eps10" in capsys.readouterr().out

    def test_unknown_dataset(self, tmp_path, capsys):
        code = main(
            ["generate", "--dataset", "Bogus", "--out", str(tmp_path / "x.npy")]
        )
        assert code == 2
        assert "unknown dataset" in capsys.readouterr().err


class TestCluster:
    def test_clusters_and_writes_labels(self, point_file, tmp_path, capsys):
        label_path = tmp_path / "labels.txt"
        code = main(
            [
                "cluster",
                point_file,
                "--eps",
                "0.3",
                "--min-pts",
                "10",
                "--out",
                str(label_path),
            ]
        )
        assert code == 0
        assert "clusters=2" in capsys.readouterr().out
        labels = load_labels(label_path)
        assert labels.shape == (600,)
        assert set(labels.tolist()) == {0, 1}

    def test_without_output_path(self, point_file, capsys):
        code = main(["cluster", point_file, "--eps", "0.3", "--min-pts", "10"])
        assert code == 0
        assert "clusters=2" in capsys.readouterr().out


class TestCompare:
    def test_prints_table(self, point_file, capsys):
        code = main(
            [
                "compare",
                point_file,
                "--eps",
                "0.3",
                "--min-pts",
                "10",
                "--partitions",
                "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "RP-DBSCAN" in out
        assert "ESP-DBSCAN" in out
        assert "elapsed" in out


class TestAccuracy:
    def test_reports_rand_index(self, point_file, capsys):
        code = main(
            ["accuracy", point_file, "--eps", "0.3", "--min-pts", "10"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Rand index" in out
        assert "1.0000" in out  # two clean blobs: exact agreement
