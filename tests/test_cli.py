"""Unit tests for the rp-dbscan CLI."""

import numpy as np
import pytest

from repro.cli import main
from repro.data.io import load_labels, save_points


@pytest.fixture()
def point_file(tmp_path, two_blobs):
    path = tmp_path / "pts.npy"
    save_points(path, two_blobs)
    return str(path)


class TestGenerate:
    def test_generates_dataset(self, tmp_path, capsys):
        out = tmp_path / "geo.npy"
        code = main(
            ["generate", "--dataset", "GeoLife", "--n", "200", "--out", str(out)]
        )
        assert code == 0
        assert np.load(out).shape == (200, 3)
        assert "eps10" in capsys.readouterr().out

    def test_unknown_dataset(self, tmp_path, capsys):
        code = main(
            ["generate", "--dataset", "Bogus", "--out", str(tmp_path / "x.npy")]
        )
        assert code == 2
        assert "unknown dataset" in capsys.readouterr().err


class TestCluster:
    def test_clusters_and_writes_labels(self, point_file, tmp_path, capsys):
        label_path = tmp_path / "labels.txt"
        code = main(
            [
                "cluster",
                point_file,
                "--eps",
                "0.3",
                "--min-pts",
                "10",
                "--out",
                str(label_path),
            ]
        )
        assert code == 0
        assert "clusters=2" in capsys.readouterr().out
        labels = load_labels(label_path)
        assert labels.shape == (600,)
        assert set(labels.tolist()) == {0, 1}

    def test_without_output_path(self, point_file, capsys):
        code = main(["cluster", point_file, "--eps", "0.3", "--min-pts", "10"])
        assert code == 0
        assert "clusters=2" in capsys.readouterr().out


class TestClusterObservability:
    BASE = ["--eps", "0.3", "--min-pts", "10", "--partitions", "4"]

    def test_trace_jsonl_written_and_valid(self, point_file, tmp_path, capsys):
        from repro.obs import read_spans_jsonl, validate_trace

        trace_path = tmp_path / "trace.jsonl"
        code = main(
            ["cluster", point_file, *self.BASE, "--trace", str(trace_path)]
        )
        assert code == 0
        assert "trace (jsonl) written" in capsys.readouterr().out
        spans = read_spans_jsonl(trace_path)
        validate_trace(spans)
        assert any(s.kind == "fit" for s in spans)
        assert any(s.kind == "attempt" for s in spans)

    def test_trace_chrome_format(self, point_file, tmp_path):
        import json

        trace_path = tmp_path / "trace.json"
        code = main(
            [
                "cluster", point_file, *self.BASE,
                "--trace", str(trace_path), "--trace-format", "chrome",
            ]
        )
        assert code == 0
        doc = json.loads(trace_path.read_text())
        assert doc["traceEvents"]

    def test_report_printed(self, point_file, capsys):
        code = main(["cluster", point_file, *self.BASE, "--report"])
        assert code == 0
        out = capsys.readouterr().out
        assert "run report" in out
        assert "phase breakdown" in out
        assert "critical path" in out

    def test_profile_written(self, point_file, tmp_path, capsys):
        import pstats

        prof_path = tmp_path / "fit.pstats"
        code = main(
            ["cluster", point_file, *self.BASE, "--profile", str(prof_path)]
        )
        assert code == 0
        assert "merged cProfile stats written" in capsys.readouterr().out
        assert pstats.Stats(str(prof_path)).stats

    def test_chaos_ledger_has_respawn_timestamps(self, point_file, capsys):
        code = main(
            [
                "cluster", point_file, *self.BASE,
                "--engine", "process", "--workers", "2",
                "--chaos-crash", "0.06", "--chaos-seed", "1",
                "--max-retries", "8",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "fault recovery:" in out
        assert "respawn at" in out and "UTC" in out


class TestPredict:
    @pytest.fixture()
    def model_file(self, point_file, tmp_path):
        path = tmp_path / "model.rpst"
        code = main(
            [
                "cluster", point_file, "--eps", "0.3", "--min-pts", "10",
                "--save-model", str(path),
            ]
        )
        assert code == 0
        return str(path)

    def test_predict_writes_npy_labels(
        self, point_file, model_file, tmp_path, capsys
    ):
        out = tmp_path / "labels.npy"
        code = main(
            ["predict", point_file, "--model", model_file, "--out", str(out)]
        )
        assert code == 0
        printed = capsys.readouterr().out
        assert "predicted 600 points" in printed
        assert "warmup=" in printed  # setup billed, not hidden
        labels = load_labels(out)
        assert labels.dtype == np.int64
        assert labels.shape == (600,)
        assert set(labels.tolist()) <= {-1, 0, 1}

    def test_memmap_predict_matches_eager(
        self, point_file, model_file, tmp_path
    ):
        eager_out = tmp_path / "eager.npy"
        memmap_out = tmp_path / "memmap.npy"
        assert (
            main(
                ["predict", point_file, "--model", model_file,
                 "--out", str(eager_out)]
            )
            == 0
        )
        assert (
            main(
                ["predict", point_file, "--model", model_file,
                 "--memmap", "--out", str(memmap_out)]
            )
            == 0
        )
        np.testing.assert_array_equal(
            load_labels(eager_out), load_labels(memmap_out)
        )

    def test_dim_mismatch_reports_error(self, model_file, tmp_path, capsys):
        bad = tmp_path / "bad.npy"
        save_points(bad, np.zeros((5, 7)))
        code = main(["predict", str(bad), "--model", model_file])
        assert code == 2
        assert "dim 7" in capsys.readouterr().err

    def test_missing_model_reports_error(self, point_file, tmp_path, capsys):
        code = main(
            ["predict", point_file, "--model", str(tmp_path / "nope.rpst")]
        )
        assert code == 2
        assert "cannot load model" in capsys.readouterr().err


class TestServeParser:
    def test_serve_requires_model(self):
        with pytest.raises(SystemExit):
            main(["serve"])

    def test_serve_rejects_bad_worker_count(self, tmp_path, capsys):
        code = main(
            ["serve", "--model", str(tmp_path / "m.rpst"), "--workers", "0"]
        )
        assert code == 2
        assert "--workers" in capsys.readouterr().err

    def test_serve_missing_model_file(self, tmp_path, capsys):
        code = main(["serve", "--model", str(tmp_path / "nope.rpst")])
        assert code == 2


class TestCompare:
    def test_prints_table(self, point_file, capsys):
        code = main(
            [
                "compare",
                point_file,
                "--eps",
                "0.3",
                "--min-pts",
                "10",
                "--partitions",
                "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "RP-DBSCAN" in out
        assert "ESP-DBSCAN" in out
        assert "elapsed" in out


class TestAccuracy:
    def test_reports_rand_index(self, point_file, capsys):
        code = main(
            ["accuracy", point_file, "--eps", "0.3", "--min-pts", "10"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Rand index" in out
        assert "1.0000" in out  # two clean blobs: exact agreement
