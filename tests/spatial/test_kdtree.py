"""Unit tests for repro.spatial.kdtree."""

import numpy as np
import pytest

from repro.spatial.kdtree import KDTree


def brute_ball(points, center, radius):
    diff = points - center
    return set(np.nonzero(np.einsum("ij,ij->i", diff, diff) <= radius**2)[0].tolist())


class TestQueryBall:
    @pytest.mark.parametrize("dim", [1, 2, 3, 8])
    def test_matches_bruteforce(self, dim):
        rng = np.random.default_rng(dim)
        pts = rng.normal(size=(300, dim))
        tree = KDTree(pts)
        for _ in range(10):
            center = rng.normal(size=dim)
            radius = float(rng.uniform(0.3, 1.5))
            got = set(tree.query_ball(center, radius).tolist())
            assert got == brute_ball(pts, center, radius)

    def test_empty_tree(self):
        tree = KDTree(np.empty((0, 3)))
        assert tree.query_ball(np.zeros(3), 1.0).size == 0

    def test_zero_radius_hits_exact_point(self):
        pts = np.array([[0.0, 0.0], [1.0, 1.0]])
        tree = KDTree(pts)
        assert set(tree.query_ball(np.array([1.0, 1.0]), 0.0).tolist()) == {1}

    def test_duplicate_points(self):
        pts = np.zeros((100, 2))
        tree = KDTree(pts)
        assert tree.query_ball(np.zeros(2), 0.1).size == 100

    def test_wrong_center_shape(self):
        tree = KDTree(np.zeros((5, 3)))
        with pytest.raises(ValueError):
            tree.query_ball(np.zeros(2), 1.0)

    def test_small_leaf_size(self):
        rng = np.random.default_rng(9)
        pts = rng.normal(size=(200, 2))
        tree = KDTree(pts, leaf_size=2)
        center = np.zeros(2)
        assert set(tree.query_ball(center, 1.0).tolist()) == brute_ball(
            pts, center, 1.0
        )


class TestQueryNearest:
    def test_matches_bruteforce(self):
        rng = np.random.default_rng(4)
        pts = rng.normal(size=(500, 3))
        tree = KDTree(pts)
        for _ in range(20):
            center = rng.normal(size=3)
            idx, dist = tree.query_nearest(center)
            diff = pts - center
            sq = np.einsum("ij,ij->i", diff, diff)
            assert idx == int(np.argmin(sq))
            assert np.isclose(dist, np.sqrt(sq.min()))

    def test_empty_tree_raises(self):
        with pytest.raises(ValueError):
            KDTree(np.empty((0, 2))).query_nearest(np.zeros(2))


class TestConstruction:
    def test_len(self):
        assert len(KDTree(np.zeros((7, 2)))) == 7

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            KDTree(np.zeros(5))

    def test_rejects_bad_leaf_size(self):
        with pytest.raises(ValueError):
            KDTree(np.zeros((5, 2)), leaf_size=0)
