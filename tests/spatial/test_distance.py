"""Unit tests for repro.spatial.distance."""

import numpy as np
import pytest

from repro.spatial.distance import (
    count_within,
    euclidean,
    pairwise_distances,
    points_within,
    squared_distances,
)


class TestEuclidean:
    def test_simple_345_triangle(self):
        assert euclidean(np.array([0.0, 0.0]), np.array([3.0, 4.0])) == 5.0

    def test_identical_points(self):
        p = np.array([1.5, -2.0, 7.0])
        assert euclidean(p, p) == 0.0

    def test_symmetry(self):
        p = np.array([1.0, 2.0])
        q = np.array([-3.0, 0.5])
        assert euclidean(p, q) == euclidean(q, p)

    def test_one_dimension(self):
        assert euclidean(np.array([2.0]), np.array([-1.0])) == 3.0


class TestSquaredDistances:
    def test_matches_euclidean(self):
        rng = np.random.default_rng(0)
        pts = rng.normal(size=(50, 3))
        center = rng.normal(size=3)
        expected = np.array([euclidean(p, center) ** 2 for p in pts])
        np.testing.assert_allclose(squared_distances(pts, center), expected)

    def test_empty_input(self):
        out = squared_distances(np.empty((0, 2)), np.zeros(2))
        assert out.shape == (0,)


class TestPairwiseDistances:
    def test_matches_bruteforce(self):
        rng = np.random.default_rng(1)
        a = rng.normal(size=(20, 4))
        b = rng.normal(size=(30, 4))
        out = pairwise_distances(a, b)
        brute = np.array([[euclidean(p, q) for q in b] for p in a])
        np.testing.assert_allclose(out, brute, atol=1e-9)

    def test_no_negative_sqrt_warnings(self):
        # Identical points stress the |a|^2+|b|^2-2ab cancellation.
        a = np.tile([1e8, -1e8], (10, 1))
        out = pairwise_distances(a, a)
        assert np.all(out >= 0)
        np.testing.assert_allclose(np.diag(out), 0.0, atol=1e-2)

    def test_shape(self):
        out = pairwise_distances(np.zeros((3, 2)), np.zeros((5, 2)))
        assert out.shape == (3, 5)

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            pairwise_distances(np.zeros(3), np.zeros((5, 3)))


class TestPointsWithin:
    def test_inclusive_boundary(self):
        pts = np.array([[1.0, 0.0], [0.0, 2.0]])
        mask = points_within(pts, np.zeros(2), 1.0)
        assert mask.tolist() == [True, False]

    def test_count_within(self):
        pts = np.array([[0.0, 0.0], [0.5, 0.0], [2.0, 0.0]])
        assert count_within(pts, np.zeros(2), 1.0) == 2
