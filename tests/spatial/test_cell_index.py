"""Unit tests for repro.spatial.cell_index.

The critical contract: the two candidate strategies (offset enumeration
and kd-tree) return identical results, and both return exactly the
non-empty cells whose box is within eps of the query cell's box.
"""

import math

import numpy as np
import pytest

from repro.spatial.cell_index import NeighborCellFinder


def brute_candidates(cells, query, side, eps):
    out = []
    q = np.asarray(query, dtype=np.int64)
    for cell in cells:
        delta = np.abs(np.asarray(cell, dtype=np.int64) - q)
        gap = np.maximum(delta - 1, 0) * side
        if math.sqrt(float(np.dot(gap, gap))) <= eps * (1 + 1e-12):
            out.append(cell)
    return sorted(out)


@pytest.fixture()
def random_cells_2d():
    rng = np.random.default_rng(0)
    return {tuple(int(v) for v in row) for row in rng.integers(-6, 7, (150, 2))}


class TestStrategiesAgree:
    def test_enumerate_matches_bruteforce(self, random_cells_2d):
        side = 0.5
        eps = side * math.sqrt(2)
        finder = NeighborCellFinder(random_cells_2d, side, eps, strategy="enumerate")
        for query in [(0, 0), (3, -2), (-6, 6), (100, 100)]:
            assert finder.candidates(query) == brute_candidates(
                random_cells_2d, query, side, eps
            )

    def test_kdtree_matches_bruteforce(self, random_cells_2d):
        side = 0.5
        eps = side * math.sqrt(2)
        finder = NeighborCellFinder(random_cells_2d, side, eps, strategy="kdtree")
        for query in [(0, 0), (3, -2), (-6, 6), (100, 100)]:
            assert finder.candidates(query) == brute_candidates(
                random_cells_2d, query, side, eps
            )

    @pytest.mark.parametrize("dim", [1, 2, 3])
    def test_strategies_agree_random(self, dim):
        rng = np.random.default_rng(dim)
        cells = {tuple(int(v) for v in row) for row in rng.integers(-4, 5, (80, dim))}
        side = 0.3
        eps = side * math.sqrt(dim)
        enum = NeighborCellFinder(cells, side, eps, strategy="enumerate")
        tree = NeighborCellFinder(cells, side, eps, strategy="kdtree")
        for _ in range(20):
            query = tuple(int(v) for v in rng.integers(-5, 6, dim))
            assert enum.candidates(query) == tree.candidates(query)


class TestAutoStrategy:
    def test_low_dim_auto_is_enumerate(self):
        finder = NeighborCellFinder({(0, 0)}, 1.0, math.sqrt(2))
        assert finder.strategy == "enumerate"

    def test_high_dim_auto_is_kdtree(self):
        cell = tuple([0] * 13)
        finder = NeighborCellFinder({cell}, 1.0, math.sqrt(13))
        assert finder.strategy == "kdtree"

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            NeighborCellFinder({(0, 0)}, 1.0, 1.0, strategy="quantum")


class TestEdgeCases:
    def test_empty_cell_set(self):
        finder = NeighborCellFinder(set(), 1.0, 1.0, strategy="kdtree")
        assert finder.candidates((0,)) == []

    def test_query_from_empty_cell(self, random_cells_2d):
        side = 0.5
        eps = side * math.sqrt(2)
        finder = NeighborCellFinder(random_cells_2d, side, eps)
        query = (999, 999)  # definitely not a member
        assert finder.candidates(query) == []

    def test_self_included_when_nonempty(self):
        finder = NeighborCellFinder({(1, 1)}, 1.0, math.sqrt(2))
        assert (1, 1) in finder.candidates((1, 1))

    def test_rejects_nonpositive_side(self):
        with pytest.raises(ValueError):
            NeighborCellFinder({(0,)}, 0.0, 1.0)


class TestDeterministicOrdering:
    """Regression: candidates must come back in lexicographic order.

    The finder used to be built from ``set(...)`` cell ids, which made
    candidate order depend on hash iteration — harmless for correctness
    but fatal for bit-identical results across runs and engines.  The
    sorted-array finder pins both the row indices (ascending) and the
    tuple candidates (lexicographic).
    """

    @pytest.mark.parametrize("strategy", ["enumerate", "kdtree"])
    def test_candidate_rows_ascending(self, random_cells_2d, strategy):
        side = 0.5
        eps = side * math.sqrt(2)
        finder = NeighborCellFinder(random_cells_2d, side, eps, strategy=strategy)
        for query in sorted(random_cells_2d)[:25]:
            rows = finder.candidate_rows(query)
            assert rows.dtype == np.int64
            assert np.all(np.diff(rows) > 0)  # strictly ascending
            cells = [tuple(r) for r in finder.cell_ids[rows].tolist()]
            assert cells == sorted(cells)
            assert cells == finder.candidates(query)

    def test_rows_index_the_sorted_id_array(self, random_cells_2d):
        side = 0.5
        eps = side * math.sqrt(2)
        finder = NeighborCellFinder(random_cells_2d, side, eps)
        as_tuples = [tuple(r) for r in finder.cell_ids.tolist()]
        # The finder's id array is the canonical lexicographic order —
        # rows double as dense dictionary indices.
        assert as_tuples == sorted(set(as_tuples))
        for query in sorted(random_cells_2d)[:10]:
            expected = brute_candidates(random_cells_2d, query, side, eps)
            assert finder.candidates(query) == expected

    def test_set_and_array_inputs_agree(self, random_cells_2d):
        side = 0.5
        eps = side * math.sqrt(2)
        from_set = NeighborCellFinder(random_cells_2d, side, eps)
        ids = np.array(sorted(random_cells_2d), dtype=np.int64)
        from_array = NeighborCellFinder(ids, side, eps)
        assert np.array_equal(from_set.cell_ids, from_array.cell_ids)
        some = sorted(random_cells_2d)[0]
        assert np.array_equal(
            from_set.candidate_rows(some), from_array.candidate_rows(some)
        )
