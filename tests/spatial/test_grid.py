"""Unit tests for repro.spatial.grid."""

import math

import numpy as np
import pytest

from repro.spatial.grid import (
    GridSpec,
    box_max_distance_to_point,
    box_min_distance_to_point,
    cell_box_bounds,
    cell_ids_for_points,
    group_points_by_cell,
    neighbor_cell_offsets,
)


class TestGridSpec:
    def test_diagonal_equals_eps(self):
        for dim in (1, 2, 3, 5, 13):
            spec = GridSpec(eps=0.7, dim=dim)
            assert math.isclose(spec.diagonal, 0.7)

    def test_side_formula(self):
        spec = GridSpec(eps=2.0, dim=4)
        assert math.isclose(spec.side, 1.0)

    def test_rejects_bad_eps(self):
        with pytest.raises(ValueError):
            GridSpec(eps=0.0, dim=2)
        with pytest.raises(ValueError):
            GridSpec(eps=-1.0, dim=2)

    def test_rejects_bad_dim(self):
        with pytest.raises(ValueError):
            GridSpec(eps=1.0, dim=0)

    def test_cell_id_of_negative_coordinates(self):
        spec = GridSpec(eps=math.sqrt(2), dim=2)  # side = 1
        assert spec.cell_id_of(np.array([-0.5, 0.5])) == (-1, 0)

    def test_origin_and_center(self):
        spec = GridSpec(eps=math.sqrt(2), dim=2)
        np.testing.assert_allclose(spec.cell_origin((2, -1)), [2.0, -1.0])
        np.testing.assert_allclose(spec.cell_center((0, 0)), [0.5, 0.5])


class TestCellIds:
    def test_points_within_one_cell_are_within_eps(self):
        # The defining property of the grid: cell diagonal == eps.
        rng = np.random.default_rng(0)
        eps = 0.5
        pts = rng.uniform(-3, 3, (500, 3))
        spec = GridSpec(eps, 3)
        ids = cell_ids_for_points(pts, spec.side)
        for cell in np.unique(ids, axis=0)[:20]:
            members = pts[np.all(ids == cell, axis=1)]
            if members.shape[0] > 1:
                diffs = members[:, None, :] - members[None, :, :]
                dists = np.sqrt(np.einsum("ijk,ijk->ij", diffs, diffs))
                assert dists.max() <= eps + 1e-12

    def test_rejects_1d_points(self):
        with pytest.raises(ValueError):
            cell_ids_for_points(np.zeros(5), 1.0)


class TestGroupPointsByCell:
    def test_partition_of_indices(self):
        rng = np.random.default_rng(1)
        pts = rng.uniform(0, 5, (200, 2))
        groups = group_points_by_cell(pts, 0.9)
        all_indices = np.concatenate(list(groups.values()))
        assert sorted(all_indices.tolist()) == list(range(200))

    def test_group_members_share_cell(self):
        rng = np.random.default_rng(2)
        pts = rng.uniform(-2, 2, (100, 3))
        side = 0.7
        groups = group_points_by_cell(pts, side)
        for cell_id, indices in groups.items():
            ids = np.floor(pts[indices] / side).astype(np.int64)
            assert np.all(ids == np.array(cell_id))

    def test_empty_input(self):
        assert group_points_by_cell(np.empty((0, 2)), 1.0) == {}

    def test_single_point(self):
        groups = group_points_by_cell(np.array([[0.2, 0.3]]), 1.0)
        assert list(groups.keys()) == [(0, 0)]


class TestBoxDistances:
    def test_point_inside_box(self):
        lo, hi = cell_box_bounds((0, 0), 1.0)
        assert box_min_distance_to_point(lo, hi, np.array([0.5, 0.5])) == 0.0

    def test_point_outside_box(self):
        lo, hi = cell_box_bounds((0, 0), 1.0)
        assert math.isclose(
            box_min_distance_to_point(lo, hi, np.array([2.0, 0.5])), 1.0
        )

    def test_max_distance_is_to_far_corner(self):
        lo, hi = cell_box_bounds((0, 0), 1.0)
        assert math.isclose(
            box_max_distance_to_point(lo, hi, np.array([0.0, 0.0])), math.sqrt(2)
        )

    def test_min_le_max(self):
        rng = np.random.default_rng(3)
        lo, hi = cell_box_bounds((1, -2, 0), 0.5)
        for _ in range(20):
            p = rng.uniform(-3, 3, 3)
            assert box_min_distance_to_point(lo, hi, p) <= box_max_distance_to_point(
                lo, hi, p
            )


class TestNeighborCellOffsets:
    def test_includes_zero_offset(self):
        offsets = neighbor_cell_offsets(2)
        assert any(np.all(row == 0) for row in offsets)

    def test_2d_count_matches_condition(self):
        # In 2-d: sum(max(|o|-1, 0)^2) <= 2 over [-2, 2]^2.
        offsets = neighbor_cell_offsets(2)
        gap = np.maximum(np.abs(offsets) - 1, 0)
        assert np.all(np.einsum("ij,ij->i", gap, gap) <= 2)
        # Sufficiency: every offset satisfying the condition is present.
        expected = 0
        for a in range(-3, 4):
            for b in range(-3, 4):
                if max(abs(a) - 1, 0) ** 2 + max(abs(b) - 1, 0) ** 2 <= 2:
                    expected += 1
        assert offsets.shape[0] == expected

    def test_explosion_guard(self):
        with pytest.raises(ValueError, match="kd-tree"):
            neighbor_cell_offsets(13)

    def test_radius_override(self):
        offsets = neighbor_cell_offsets(1, radius_cells=5)
        assert offsets.min() >= -5 and offsets.max() <= 5
