"""Unit tests for repro.spatial.mbr."""

import numpy as np
import pytest

from repro.spatial.mbr import MBR


class TestConstruction:
    def test_of_points(self):
        pts = np.array([[0.0, 5.0], [2.0, 1.0], [-1.0, 3.0]])
        mbr = MBR.of_points(pts)
        np.testing.assert_allclose(mbr.lo, [-1.0, 1.0])
        np.testing.assert_allclose(mbr.hi, [2.0, 5.0])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            MBR.of_points(np.empty((0, 2)))

    def test_rejects_inverted_corners(self):
        with pytest.raises(ValueError):
            MBR(np.array([1.0, 0.0]), np.array([0.0, 1.0]))

    def test_dim(self):
        assert MBR(np.zeros(4), np.ones(4)).dim == 4


class TestMerged:
    def test_covers_both(self):
        a = MBR(np.array([0.0, 0.0]), np.array([1.0, 1.0]))
        b = MBR(np.array([2.0, -1.0]), np.array([3.0, 0.5]))
        m = a.merged(b)
        np.testing.assert_allclose(m.lo, [0.0, -1.0])
        np.testing.assert_allclose(m.hi, [3.0, 1.0])


class TestSkipTest:
    """Lemma 5.10: the skip test must be sound (never skip a relevant
    sub-dictionary) — checked here geometrically."""

    def test_far_point_skips(self):
        mbr = MBR(np.zeros(2), np.ones(2))
        assert mbr.can_skip(np.array([5.0, 0.5]), eps=1.0)

    def test_point_inside_never_skips(self):
        mbr = MBR(np.zeros(2), np.ones(2))
        assert not mbr.can_skip(np.array([0.5, 0.5]), eps=0.1)

    def test_no_false_skips(self):
        # If some indexed point is within eps, the MBR must not skip.
        rng = np.random.default_rng(0)
        pts = rng.uniform(0, 2, (100, 3))
        mbr = MBR.of_points(pts)
        for _ in range(50):
            query = rng.uniform(-2, 4, 3)
            eps = float(rng.uniform(0.2, 1.5))
            diff = pts - query
            has_neighbor = np.any(np.einsum("ij,ij->i", diff, diff) <= eps**2)
            if has_neighbor:
                assert not mbr.can_skip(query, eps)

    def test_diagonal_gap_does_not_skip(self):
        # Axis-wise test: a point diagonally off the corner farther than
        # eps in Euclidean terms but within eps per axis is NOT skipped
        # (the test is conservative, never unsound).
        mbr = MBR(np.zeros(2), np.ones(2))
        p = np.array([1.9, 1.9])  # Euclidean distance to box ~ 1.27
        assert not mbr.can_skip(p, eps=1.0)


class TestDistances:
    def test_min_distance_inside_is_zero(self):
        mbr = MBR(np.zeros(2), np.ones(2))
        assert mbr.min_distance_to(np.array([0.3, 0.7])) == 0.0

    def test_min_distance_outside(self):
        mbr = MBR(np.zeros(2), np.ones(2))
        assert np.isclose(mbr.min_distance_to(np.array([2.0, 0.5])), 1.0)

    def test_contains_point(self):
        mbr = MBR(np.zeros(2), np.ones(2))
        assert mbr.contains_point(np.array([1.0, 1.0]))  # border inclusive
        assert not mbr.contains_point(np.array([1.0001, 0.5]))
